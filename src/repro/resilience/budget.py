"""Resource budgets: cooperative cancellation for derived computations.

The paper's three-valued soundness contract says a derived checker may
answer ``Some true`` / ``Some false`` only when the relation definitely
holds / fails, and must otherwise signal indefiniteness.  Fuel is one
resource bound with that shape; this module generalizes it: a
:class:`Budget` bounds **wall-clock time**, **executor ops**, and
**recursion depth** (plus, through the memo layer, **cache size**), and
exhausting any of them degrades every derived computation to its
indefinite outcome — a checker answers ``None``, an enumerator ends its
(truncated but valid) slice with an ``OUT_OF_FUEL`` marker, a generator
returns ``OUT_OF_FUEL``.  Interruption can *never* manufacture a wrong
definite answer, because the only thing a trip does is convert "keep
searching" into "give up indefinitely" — the same edge fuel exhaustion
already exercises (``tests/resilience/test_fault_injection.py`` asserts
this differentially over the whole corpus).

Installation follows the observability pattern exactly: the budget
lives at ``ctx.caches[BUDGET_KEY]``, the executors probe it with one
``caches.get`` per fixpoint level and guard every site with ``is not
None`` — budgets-off overhead is a dict read per level plus dead
branches (held to <= 1.05x by ``benchmarks/bench_resilience.py``).

**Charging protocol.**  Both executor families charge at the same
three kinds of site, in the same order, so interpreted and compiled
runs consume op indices identically (which is what makes the
fault-injection differential suite meaningful):

* one op at every fixpoint-level entry (``rec`` call);
* ``handler.cost`` (1 + the handler's op count) per handler attempt;
* one op per item of every producer/instantiate enumeration loop.

:meth:`Budget.charge` is the hot path: an integer add and one compare
against a precomputed watermark; deadline probes (`time.perf_counter`)
run only every *check_every* ops.  A trip **latches**: every later
``charge`` returns ``True`` immediately, so deep recursion unwinds
cooperatively — each level does at most one more loop step before
answering its indefinite outcome.  Nothing is ever raised mid-plan.

After the run, :attr:`Budget.exhausted` carries the structured
:class:`Exhausted` outcome — which limit tripped, where (the first
fixpoint site to observe it, and the innermost open observation span if
a session is active), the op/elapsed accounting, and a partial
:class:`~repro.derive.stats.DeriveStats` snapshot.  ``Exhausted`` is
deliberately distinct from the ``OUT_OF_FUEL`` marker: the marker is a
value-level signal inside a search; ``Exhausted`` is the run-level
diagnosis of *why* the search was cut short.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ..core.context import Context
from ..derive.stats import STATS_KEY
from ..derive.trace import BUDGET_KEY, OBSERVE_KEY

__all__ = [
    "BUDGET_KEY",
    "Budget",
    "Exhausted",
    "budget_scope",
    "install_budget",
    "remove_budget",
    "budget_of",
]

#: a practically-infinite op watermark (charge() never reaches it)
_NEVER = float("inf")


@dataclass
class Exhausted:
    """Structured outcome of a budget trip.

    Distinct from ``OUT_OF_FUEL``: the marker says "this search ended
    indefinitely"; ``Exhausted`` says *which resource limit* ended it,
    *where*, and what the run had done by then — enough to reproduce,
    re-budget, or report the interruption.
    """

    #: which limit tripped: 'deadline' | 'ops' | 'depth' | 'fault'
    limit: str
    #: charge index at the trip
    ops: int
    #: wall-clock seconds from budget start to the trip
    elapsed_seconds: float
    #: first fixpoint site to observe the trip: (kind, rel, mode) or None
    site: "tuple | None" = None
    #: innermost open observation span id at the trip (None when no
    #: observe session was active)
    span: "int | None" = None
    #: instance resolutions (derivations) performed inside the budget
    resolutions: int = 0
    #: partial DeriveStats snapshot at the trip (None when stats off)
    stats: "dict | None" = None
    #: the limits the budget was installed with
    limits: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": "exhausted",
            "limit": self.limit,
            "ops": self.ops,
            "elapsed_seconds": self.elapsed_seconds,
            "site": list(self.site) if self.site else None,
            "span": self.span,
            "resolutions": self.resolutions,
            "stats": self.stats,
            "limits": self.limits,
        }

    def describe(self) -> str:
        site = (
            f"{self.site[0]}:{self.site[1]}[{self.site[2]}]"
            if self.site
            else "(outside any fixpoint)"
        )
        lines = [
            f"*** Exhausted: {self.limit} limit tripped after "
            f"{self.ops:,} ops / {self.elapsed_seconds:.3f}s",
            f"    at {site}"
            + (f" (span #{self.span})" if self.span is not None else ""),
        ]
        limits = ", ".join(
            f"{k}={v}" for k, v in self.limits.items() if v is not None
        )
        if limits:
            lines.append(f"    budget: {limits}")
        if self.resolutions:
            lines.append(
                f"    {self.resolutions} instance derivations inside the budget"
            )
        if self.stats:
            busy = {
                k: v for k, v in self.stats.items() if v and k != "cache_hits"
            }
            if busy:
                lines.append(
                    "    partial stats: "
                    + ", ".join(f"{k}={v:,}" for k, v in sorted(busy.items()))
                )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class Budget:
    """A cooperative resource budget for derived computations.

    Limits (all optional; ``None`` means unlimited):

    * *deadline_seconds* — wall clock, measured from :meth:`start`
      (probed every *check_every* ops, so granularity is cooperative);
    * *max_ops* — executor charge budget (see the module docstring for
      what one op is);
    * *max_depth* — recursion-depth cap **within each derived
      fixpoint** (``top_size - size``); with ``decide()``'s
      fuel-doubling this bounds depth while leaving breadth alone;
    * *max_cache_entries* — memo-table size cap, enforced by
      :mod:`repro.derive.memo` on insertion (oldest entries evicted).

    *faults* is an optional :class:`~repro.resilience.faults.FaultPlan`
    whose injections fire at their scheduled charge indices.

    A budget is **one-shot**: once tripped it stays tripped (use
    :meth:`renew` for a fresh copy with the same limits, optionally
    scaled — the campaign layer's retry backoff).
    """

    __slots__ = (
        "deadline_seconds",
        "max_ops",
        "max_depth",
        "max_cache_entries",
        "check_every",
        "faults",
        "ctx",
        "ops",
        "taints",
        "injected",
        "evictions",
        "resolutions",
        "exhausted",
        "_t0",
        "_deadline_at",
        "_wall_next",
        "_next_check",
        "_events",
        "_pos",
    )

    def __init__(
        self,
        *,
        deadline_seconds: "float | None" = None,
        max_ops: "int | None" = None,
        max_depth: "int | None" = None,
        max_cache_entries: "int | None" = None,
        check_every: int = 256,
        faults: Any = None,
        ctx: "Context | None" = None,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.deadline_seconds = deadline_seconds
        self.max_ops = max_ops
        self.max_depth = max_depth
        self.max_cache_entries = max_cache_entries
        self.check_every = check_every
        self.faults = faults
        self.ctx = ctx
        self.ops = 0
        #: exhaustion-taint counter: bumped on every trip and every
        #: injected one-shot fault.  The memo layer snapshots it around
        #: a computation and skips the table write when it moved — an
        #: ``Exhausted``-tainted result is never cached (ISSUE policy).
        self.taints = 0
        self.injected = 0
        self.evictions = 0
        self.resolutions = 0
        self.exhausted: "Exhausted | None" = None
        self._t0 = 0.0
        self._deadline_at = _NEVER
        self._events = tuple(faults.events) if faults is not None else ()
        self._pos = 0
        self._wall_next = _NEVER
        self._next_check = _NEVER
        self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Budget":
        """(Re)arm the clock and the charge watermark.  Called by the
        constructor and by :func:`budget_scope` on installation, so the
        deadline measures the governed region, not object creation."""
        self._t0 = perf_counter()
        if self.deadline_seconds is not None:
            self._deadline_at = self._t0 + self.deadline_seconds
            self._wall_next = self.ops + self.check_every
        else:
            self._deadline_at = _NEVER
            self._wall_next = _NEVER
        self._recompute_next()
        return self

    def renew(self, scale: float = 1.0) -> "Budget":
        """A fresh, untripped budget with the same limits (and a fresh
        fault schedule), optionally *scale*\\ d — the campaign layer's
        exponential backoff multiplies the op and deadline limits."""
        return Budget(
            deadline_seconds=(
                self.deadline_seconds * scale
                if self.deadline_seconds is not None
                else None
            ),
            max_ops=(
                int(self.max_ops * scale) if self.max_ops is not None else None
            ),
            max_depth=self.max_depth,
            max_cache_entries=self.max_cache_entries,
            check_every=self.check_every,
            faults=self.faults,
            ctx=self.ctx,
        )

    def limits_dict(self) -> dict:
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_ops": self.max_ops,
            "max_depth": self.max_depth,
            "max_cache_entries": self.max_cache_entries,
        }

    @property
    def active(self) -> bool:
        """Whether any limit or fault schedule is actually live (a
        fully-unlimited budget still counts ops but can never trip)."""
        return (
            self.deadline_seconds is not None
            or self.max_ops is not None
            or self.max_depth is not None
            or self.max_cache_entries is not None
            or bool(self._events)
        )

    @property
    def elapsed_seconds(self) -> float:
        return perf_counter() - self._t0

    def taint_stamp(self) -> int:
        """Monotone counter of exhaustion events (trips + injected
        faults); the memo layer's poisoning guard."""
        return self.taints

    # -- the hot path --------------------------------------------------------

    def charge(self, n: int = 1) -> bool:
        """Consume *n* ops; ``True`` means "stop, answer indefinite".

        The common case is one integer add and one compare.  The slow
        path (due fault events, op cap, periodic deadline probe) runs
        only when the op counter crosses the precomputed watermark.
        A trip latches: once exhausted, every charge returns ``True``
        without further counting, so unwinding is O(live loop levels).
        """
        if self.exhausted is not None:
            return True
        self.ops = ops = self.ops + n
        if ops < self._next_check:
            return False
        return self._slow_check()

    def charge_entry(self, depth: int) -> bool:
        """The fixpoint-level entry charge: one op, plus the
        recursion-depth cap (*depth* is ``top_size - size``)."""
        if self.exhausted is not None:
            return True
        if self.max_depth is not None and depth > self.max_depth:
            self._trip("depth")
            return True
        return self.charge(1)

    # -- the slow path -------------------------------------------------------

    def _recompute_next(self) -> None:
        mark = self._wall_next
        if self.max_ops is not None and self.max_ops < mark:
            mark = self.max_ops
        if self._pos < len(self._events):
            ev = self._events[self._pos][0]
            if ev < mark:
                mark = ev
        self._next_check = mark

    def _slow_check(self) -> bool:
        ops = self.ops
        injected = False
        # Fault events due at (or before) this charge index.
        while self._pos < len(self._events) and self._events[self._pos][0] <= ops:
            _, kind = self._events[self._pos]
            self._pos += 1
            if kind == "trip":
                self._trip("fault")
                return True
            if kind == "fuel":
                # One-shot: this site answers indefinite, the run
                # continues — a forced OUT_OF_FUEL marker.
                self.injected += 1
                self.taints += 1
                self._observe_inc("budget.faults_injected")
                injected = True
            elif kind == "evict":
                self._evict()
        if self.max_ops is not None and ops >= self.max_ops:
            self._trip("ops")
            return True
        if ops >= self._wall_next:
            self._wall_next = ops + self.check_every
            if perf_counter() >= self._deadline_at:
                self._trip("deadline")
                return True
        self._recompute_next()
        return injected

    def _evict(self) -> None:
        """A cache-eviction fault: drop all memoized answers.  Always
        sound — the memo is a pure accelerator — which is exactly what
        the fault suite demonstrates by injecting it."""
        self.evictions += 1
        ctx = self.ctx
        if ctx is not None:
            from ..derive.memo import clear_memo

            clear_memo(ctx)
        self._observe_inc("budget.evictions")

    def _trip(self, limit: str) -> None:
        self.taints += 1
        ctx = self.ctx
        span = None
        stats_snapshot = None
        if ctx is not None:
            obs = ctx.caches.get(OBSERVE_KEY)
            if obs is not None:
                self._observe_inc("budget.trips", obs)
                self._observe_inc(f"budget.trip.{limit}", obs)
                stack = obs.spans.stack
                if stack:
                    span = stack[-1].sid
            stats = ctx.caches.get(STATS_KEY)
            if stats is not None:
                stats.budget_trips += 1
                stats_snapshot = stats.as_dict()
        self.exhausted = Exhausted(
            limit=limit,
            ops=self.ops,
            elapsed_seconds=self.elapsed_seconds,
            span=span,
            resolutions=self.resolutions,
            stats=stats_snapshot,
            limits=self.limits_dict(),
        )

    def _observe_inc(self, name: str, obs: Any = None) -> None:
        if obs is None:
            ctx = self.ctx
            obs = ctx.caches.get(OBSERVE_KEY) if ctx is not None else None
        if obs is not None:
            obs.metrics.inc(name)

    # -- cold-path bookkeeping (called by executors / registry) --------------

    def record_site(self, kind: str, rel: str, mode: str) -> None:
        """Attach the first fixpoint site to observe the trip.  The
        executors call this on the cold (already-tripped) path only."""
        ex = self.exhausted
        if ex is not None and ex.site is None:
            ex.site = (kind, rel, mode)

    def note_resolution(self) -> None:
        """Diagnostic only (never charged — resolution order differs
        between backends, and charging it would desynchronize the
        interp/compiled op streams the fault suite relies on)."""
        self.resolutions += 1

    def __repr__(self) -> str:
        state = (
            f"exhausted:{self.exhausted.limit}" if self.exhausted else "live"
        )
        return f"Budget(ops={self.ops}, {state})"


# ---------------------------------------------------------------------------
# Installation.
# ---------------------------------------------------------------------------


def install_budget(ctx: Context, budget: Budget) -> Budget:
    """Install *budget* at ``ctx.caches[BUDGET_KEY]`` (rearming its
    clock) and bind its context for diagnostics/eviction."""
    budget.ctx = ctx
    ctx.caches[BUDGET_KEY] = budget
    budget.start()
    return budget


def remove_budget(ctx: Context) -> None:
    ctx.caches.pop(BUDGET_KEY, None)


def budget_of(ctx: Context) -> "Budget | None":
    """The installed budget, or ``None`` (the zero-overhead path)."""
    return ctx.caches.get(BUDGET_KEY)


@contextmanager
def budget_scope(ctx: Context, budget: "Budget | None" = None, **limits):
    """Install a budget for the dynamic extent of the ``with`` block::

        with budget_scope(ctx, deadline_seconds=0.5) as bud:
            answer = checker(64, args)      # None if the deadline hit
        if bud.exhausted:
            print(bud.exhausted.describe())

    Accepts a prebuilt :class:`Budget` or keyword limits; the previous
    budget (if any) is restored on exit.
    """
    if budget is None:
        budget = Budget(**limits)
    elif limits:
        raise TypeError("pass a Budget or keyword limits, not both")
    previous = ctx.caches.get(BUDGET_KEY)
    install_budget(ctx, budget)
    try:
        yield budget
    finally:
        if previous is None:
            ctx.caches.pop(BUDGET_KEY, None)
        else:
            ctx.caches[BUDGET_KEY] = previous
