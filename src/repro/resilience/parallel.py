"""Parallel ``quick_check`` campaigns: shard, fork, merge.

A campaign of N tests is partitioned into per-worker *shards*, each
with its own deterministically derived seed; workers run their shard
as an ordinary (optionally budgeted/observed) ``quick_check`` under a
**fresh session** on the context, and the per-shard
:class:`~repro.quickchick.runner.CheckReport`\\ s fold into one with
:meth:`CheckReport.merge` — summed counts/labels/budget counters,
merged coverage and observe dumps, first-failure reproduction
coordinates, and ``shard_seeds`` as the campaign's replay handle.

Backends:

* ``"fork"`` (default) — a ``multiprocessing`` fork-start process
  pool.  Workers inherit the parent's context (registries, derived
  instances, artifacts) by address-space copy, so nothing is pickled
  on the way in — properties routinely close over contexts and
  derived callables, which no serializer handles.  Only the
  *reports* cross back over the pipe.  This is the throughput
  backend: shards run on real cores.
* ``"thread"`` — a thread pool; each task binds its own session via
  :func:`~repro.core.session.use_session`.  Correct under the session
  model, but GIL-bound: use it to overlap budget waits, not compute.
* ``"inline"`` — the same shards run back to back in the calling
  thread, each still under a fresh session.  This is the sequential
  reference: given the same ``seed``, its merged report matches the
  fork backend's field for field (the property the test suite pins).

Every shard starts session-cold (empty memo tables, fresh stats, its
own budget slot): a worker's budget trips and memo warmth can not
depend on which backend ran the other shards.  Platforms without the
``fork`` start method (Windows, macOS spawn-default Pythons) silently
fall back to ``inline``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..core.session import use_session
from ..quickchick.runner import CheckReport, _SEED_SOURCE, quick_check


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a campaign: its index in shard order, its
    derived seed, and how many tests it owns."""

    index: int
    seed: int
    num_tests: int


def plan_shards(
    num_tests: int, workers: int, seed: "int | None" = None
) -> list[Shard]:
    """Deterministic partition of *num_tests* across *workers*.

    Shard seeds are drawn from ``random.Random(seed)`` in shard order,
    so the partition is a pure function of ``(num_tests, workers,
    seed)`` — the contract that makes a fork campaign and its inline
    reference replay identically.  Tests split as evenly as possible
    (the first ``num_tests % workers`` shards get one extra); shards
    that would own zero tests are dropped.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if seed is None:
        seed = _SEED_SOURCE.randrange(2**63)
    rng = random.Random(seed)
    seeds = [rng.randrange(2**63) for _ in range(workers)]
    base, extra = divmod(num_tests, workers)
    shards = []
    for i in range(workers):
        n = base + (1 if i < extra else 0)
        if n:
            shards.append(Shard(i, seeds[i], n))
    return shards


def _run_shard(prop, shard: Shard, opts: dict, ctx, observe: bool) -> CheckReport:
    """One shard as an ordinary quick_check, under a fresh session."""
    kwargs = dict(
        num_tests=shard.num_tests,
        seed=shard.seed,
        size=opts["size"],
        max_discard_ratio=opts["max_discard_ratio"],
        stop_on_failure=opts["stop_on_failure"],
        deadline_seconds=opts["deadline_seconds"],
        budget=opts["budget"],
        campaign_deadline_seconds=opts["campaign_deadline_seconds"],
        budget_retries=opts["budget_retries"],
        budget_backoff=opts["budget_backoff"],
    )
    if ctx is None:
        return quick_check(prop, **kwargs)
    if observe:
        kwargs["observe"] = ctx
    with use_session(ctx, ctx.new_session(f"shard-{shard.index}")):
        return quick_check(prop, ctx=ctx, **kwargs)


# Fork-inherited worker state: set immediately before the pool is
# created, inherited by the children's address space, cleared after.
# This is how unpicklable properties (closures over contexts and
# derived callables) reach the workers.
_FORK_STATE: "tuple | None" = None


def _fork_worker(shard: Shard) -> CheckReport:
    prop, opts, ctx, observe = _FORK_STATE
    return _run_shard(prop, shard, opts, ctx, observe)


def parallel_quick_check(
    prop: Any,
    num_tests: int = 1000,
    *,
    workers: "int | None" = None,
    size: int = 5,
    seed: "int | None" = None,
    backend: str = "fork",
    ctx: Any = None,
    observe: bool = False,
    max_discard_ratio: int = 10,
    stop_on_failure: bool = True,
    deadline_seconds: "float | None" = None,
    budget: Any = None,
    campaign_deadline_seconds: "float | None" = None,
    budget_retries: int = 1,
    budget_backoff: float = 2.0,
) -> CheckReport:
    """Run *prop* as a sharded campaign and merge the shard reports.

    *seed* seeds the shard partition (drawn from OS entropy when
    ``None`` — the merged report's ``shard_seeds`` then carries the
    concrete per-shard seeds for replay).  *workers* defaults to the
    CPU count, capped at 8.  *ctx* is required for budgeted or
    observed runs and recommended whenever the property exercises
    derived computations: shards then run under per-worker sessions.
    With ``observe=True`` every shard runs under
    :func:`repro.observe.observe` on its session and the merged report
    carries the merged dump (summed coverage/metrics, concatenated
    span forest).

    ``stop_on_failure`` is per shard: a failing shard stops early, the
    others run to completion — the merge keeps the first failed
    shard's counterexample.  See the module docstring for backend
    semantics; throughput needs ``"fork"``.
    """
    if observe and ctx is None:
        raise TypeError("observe=True needs ctx=... to observe")
    if budget is not None and ctx is None:
        ctx = budget.ctx
    if (deadline_seconds is not None or budget is not None) and ctx is None:
        raise TypeError(
            "a budgeted parallel campaign needs the governed context: "
            "pass ctx=... or a Budget built with ctx=..."
        )
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    shards = plan_shards(num_tests, workers, seed)
    opts = {
        "size": size,
        "max_discard_ratio": max_discard_ratio,
        "stop_on_failure": stop_on_failure,
        "deadline_seconds": deadline_seconds,
        "budget": budget,
        "campaign_deadline_seconds": campaign_deadline_seconds,
        "budget_retries": budget_retries,
        "budget_backoff": budget_backoff,
    }
    if backend == "fork" and (
        "fork" not in multiprocessing.get_all_start_methods()
    ):
        backend = "inline"
    if backend == "inline":
        reports = [_run_shard(prop, s, opts, ctx, observe) for s in shards]
    elif backend == "thread":
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            reports = list(
                pool.map(lambda s: _run_shard(prop, s, opts, ctx, observe), shards)
            )
    elif backend == "fork":
        global _FORK_STATE
        mp = multiprocessing.get_context("fork")
        previous = _FORK_STATE
        _FORK_STATE = (prop, opts, ctx, observe)
        try:
            with mp.Pool(processes=min(len(shards), workers)) as pool:
                reports = pool.map(_fork_worker, shards)
        finally:
            _FORK_STATE = previous
    else:
        raise ValueError(
            f"unknown backend {backend!r} (expected 'fork', 'thread', "
            "or 'inline')"
        )
    return CheckReport.merge(reports, property_name=prop.name)
