"""Parallel ``quick_check`` campaigns: shard, fork, merge.

A campaign of N tests is partitioned into per-worker *shards*, each
with its own deterministically derived seed; workers run their shard
as an ordinary (optionally budgeted/observed) ``quick_check`` under a
**fresh session** on the context, and the per-shard
:class:`~repro.quickchick.runner.CheckReport`\\ s fold into one with
:meth:`CheckReport.merge` — summed counts/labels/budget counters,
merged coverage and observe dumps, first-failure reproduction
coordinates, and ``shard_seeds`` as the campaign's replay handle.

Backends:

* ``"fork"`` (default) — a ``multiprocessing`` fork-start process
  pool.  Workers inherit the parent's context (registries, derived
  instances, artifacts) by address-space copy, so nothing is pickled
  on the way in — properties routinely close over contexts and
  derived callables, which no serializer handles.  Only the
  *reports* cross back over the pipe.  This is the throughput
  backend: shards run on real cores.
* ``"thread"`` — a thread pool; each task binds its own session via
  :func:`~repro.core.session.use_session`.  Correct under the session
  model, but GIL-bound: use it to overlap budget waits, not compute.
* ``"inline"`` — the same shards run back to back in the calling
  thread, each still under a fresh session.  This is the sequential
  reference: given the same ``seed``, its merged report matches the
  fork backend's field for field (the property the test suite pins).

Every shard starts session-cold (empty memo tables, fresh stats, its
own budget slot): a worker's budget trips and memo warmth can not
depend on which backend ran the other shards.  Platforms without the
``fork`` start method (Windows, macOS spawn-default Pythons) silently
fall back to ``inline``.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..core.session import use_session
from ..derive.trace import TRACE_KEY
from ..quickchick.runner import CheckReport, _SEED_SOURCE, quick_check


class CampaignProgress:
    """Live per-shard campaign counters, visible mid-run.

    A flat ``multiprocessing.Array`` of int64 cells — one row of
    (tests, discards, failed, budget_trips, rules_fired) per shard —
    allocated by :meth:`attach` *before* the worker pool exists, so
    fork children inherit the shared memory and their in-place writes
    are visible to the parent while the campaign is still running (the
    merged :class:`~repro.quickchick.runner.CheckReport` only exists
    at the end).  Thread and inline backends share the same cells
    in-process, so the read side is backend-independent.

    ``rules_fired`` counts the distinct derivation rules the shard's
    session trace has fired so far — live coverage growth — and is 0
    unless the campaign runs with ``observe=True`` (the trace is
    installed by the observation).

    Writers are lock-free: each shard owns its row, and a torn read
    of a monotone counter is at worst one test stale.
    """

    COLUMNS = ("tests", "discards", "failed", "budget_trips", "rules_fired")

    def __init__(self) -> None:
        self.shards: list = []
        self._cells = None

    def attach(self, shards: "list[Shard]") -> "CampaignProgress":
        """Allocate one row per shard (called by
        :func:`parallel_quick_check` before workers start)."""
        self.shards = list(shards)
        self._cells = multiprocessing.Array(
            "q", len(self.shards) * len(self.COLUMNS), lock=False
        )
        return self

    def writer(self, shard: "Shard", ctx) -> "Any":
        """The per-test callback for *shard* (runs in the worker)."""
        ncol = len(self.COLUMNS)
        base = next(
            i for i, s in enumerate(self.shards) if s.index == shard.index
        ) * ncol
        cells = self._cells

        def write(report) -> None:
            cells[base] = report.tests_run
            cells[base + 1] = report.discards
            cells[base + 2] = 1 if report.failed else 0
            cells[base + 3] = report.budget_trips
            if ctx is not None:
                trace = ctx.caches.get(TRACE_KEY)
                if trace is not None:
                    cells[base + 4] = sum(
                        1 for row in trace.entries.values() if row[1] > 0
                    )

        return write

    def snapshot(self) -> "list[dict]":
        """One dict per shard, in shard order."""
        if self._cells is None:
            return []
        ncol = len(self.COLUMNS)
        raw = list(self._cells)
        return [
            dict(
                zip(self.COLUMNS, raw[i * ncol:(i + 1) * ncol]),
                shard=s.index, seed=s.seed, planned=s.num_tests,
            )
            for i, s in enumerate(self.shards)
        ]

    def totals(self) -> dict:
        out = {c: 0 for c in self.COLUMNS}
        out["planned"] = 0
        for row in self.snapshot():
            for c in self.COLUMNS:
                out[c] += row[c]
            out["planned"] += row["planned"]
        return out

    def render(self) -> str:
        rows = self.snapshot()
        if not rows:
            return "campaign progress: (not attached)"
        lines = [
            f"  {'shard':>5} {'tests':>9} {'discards':>9} {'trips':>7}"
            f" {'rules':>6} {'state':>7}"
        ]
        for r in rows:
            state = (
                "FAILED" if r["failed"]
                else "done" if r["tests"] >= r["planned"]
                else "running"
            )
            lines.append(
                f"  {r['shard']:>5} {r['tests']:>5}/{r['planned']:<3}"
                f" {r['discards']:>9} {r['budget_trips']:>7}"
                f" {r['rules_fired']:>6} {state:>7}"
            )
        t = self.totals()
        lines.append(
            f"  total {t['tests']:>5}/{t['planned']:<3} {t['discards']:>9}"
            f" {t['budget_trips']:>7} {t['rules_fired']:>6}"
        )
        return "campaign progress:\n" + "\n".join(lines)


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a campaign: its index in shard order, its
    derived seed, and how many tests it owns."""

    index: int
    seed: int
    num_tests: int


def plan_shards(
    num_tests: int, workers: int, seed: "int | None" = None
) -> list[Shard]:
    """Deterministic partition of *num_tests* across *workers*.

    Shard seeds are drawn from ``random.Random(seed)`` in shard order,
    so the partition is a pure function of ``(num_tests, workers,
    seed)`` — the contract that makes a fork campaign and its inline
    reference replay identically.  Tests split as evenly as possible
    (the first ``num_tests % workers`` shards get one extra); shards
    that would own zero tests are dropped.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if seed is None:
        seed = _SEED_SOURCE.randrange(2**63)
    rng = random.Random(seed)
    seeds = [rng.randrange(2**63) for _ in range(workers)]
    base, extra = divmod(num_tests, workers)
    shards = []
    for i in range(workers):
        n = base + (1 if i < extra else 0)
        if n:
            shards.append(Shard(i, seeds[i], n))
    return shards


def _shard_telemetry(template):
    """A fresh per-shard :class:`~repro.observe.telemetry.Telemetry`.

    Each shard records into its own instance (created *inside* the
    worker — telemetry carries a lock and per-shard qid state, so
    sharing one across fork children could not work) configured from
    the caller's template; the per-shard instances ride home on
    ``report.telemetry`` and fold together in ``CheckReport.merge``.
    """
    if not template:
        return None
    from ..observe.telemetry import Telemetry

    if template is True:
        return Telemetry()
    return Telemetry(
        sample_every=template.sample_every,
        slow_seconds=template.slow_seconds,
        event_cap=template.event_cap,
        span_cap=template.span_cap,
    )


def _run_shard(prop, shard: Shard, opts: dict, ctx, observe: bool) -> CheckReport:
    """One shard as an ordinary quick_check, under a fresh session."""
    kwargs = dict(
        num_tests=shard.num_tests,
        seed=shard.seed,
        size=opts["size"],
        max_discard_ratio=opts["max_discard_ratio"],
        stop_on_failure=opts["stop_on_failure"],
        deadline_seconds=opts["deadline_seconds"],
        budget=opts["budget"],
        campaign_deadline_seconds=opts["campaign_deadline_seconds"],
        budget_retries=opts["budget_retries"],
        budget_backoff=opts["budget_backoff"],
    )
    telemetry = _shard_telemetry(opts.get("telemetry"))
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    progress = opts.get("progress")
    if progress is not None:
        kwargs["progress"] = progress.writer(shard, ctx)
    if ctx is None:
        return quick_check(prop, **kwargs)
    if observe:
        kwargs["observe"] = ctx
    with use_session(ctx, ctx.new_session(f"shard-{shard.index}")):
        return quick_check(prop, ctx=ctx, **kwargs)


# Fork-inherited worker state: set immediately before the pool is
# created, inherited by the children's address space, cleared after.
# This is how unpicklable properties (closures over contexts and
# derived callables) reach the workers.
_FORK_STATE: "tuple | None" = None


def _fork_worker(shard: Shard) -> CheckReport:
    prop, opts, ctx, observe = _FORK_STATE
    return _run_shard(prop, shard, opts, ctx, observe)


def parallel_quick_check(
    prop: Any,
    num_tests: int = 1000,
    *,
    workers: "int | None" = None,
    size: int = 5,
    seed: "int | None" = None,
    backend: str = "fork",
    ctx: Any = None,
    observe: bool = False,
    max_discard_ratio: int = 10,
    stop_on_failure: bool = True,
    deadline_seconds: "float | None" = None,
    budget: Any = None,
    campaign_deadline_seconds: "float | None" = None,
    budget_retries: int = 1,
    budget_backoff: float = 2.0,
    telemetry: Any = False,
    progress: "CampaignProgress | None" = None,
) -> CheckReport:
    """Run *prop* as a sharded campaign and merge the shard reports.

    *seed* seeds the shard partition (drawn from OS entropy when
    ``None`` — the merged report's ``shard_seeds`` then carries the
    concrete per-shard seeds for replay).  *workers* defaults to the
    CPU count, capped at 8.  *ctx* is required for budgeted or
    observed runs and recommended whenever the property exercises
    derived computations: shards then run under per-worker sessions.
    With ``observe=True`` every shard runs under
    :func:`repro.observe.observe` on its session and the merged report
    carries the merged dump (summed coverage/metrics, concatenated
    span forest).

    ``stop_on_failure`` is per shard: a failing shard stops early, the
    others run to completion — the merge keeps the first failed
    shard's counterexample.  See the module docstring for backend
    semantics; throughput needs ``"fork"``.

    ``telemetry=True`` (or a :class:`~repro.observe.telemetry.Telemetry`
    used as a settings template) gives every shard its own telemetry
    recorder; the merged report's ``.telemetry`` is their fold, with
    shard-local qids renumbered into one campaign-global sequence and
    events stamped with their shard of origin.  *progress* is a
    :class:`CampaignProgress` whose live per-shard counters update as
    shards run — readable from the calling process even under the
    fork backend.
    """
    if observe and ctx is None:
        raise TypeError("observe=True needs ctx=... to observe")
    if budget is not None and ctx is None:
        ctx = budget.ctx
    if (deadline_seconds is not None or budget is not None) and ctx is None:
        raise TypeError(
            "a budgeted parallel campaign needs the governed context: "
            "pass ctx=... or a Budget built with ctx=..."
        )
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    shards = plan_shards(num_tests, workers, seed)
    if progress is not None:
        progress.attach(shards)  # pre-fork, so children inherit the cells
    opts = {
        "size": size,
        "max_discard_ratio": max_discard_ratio,
        "stop_on_failure": stop_on_failure,
        "deadline_seconds": deadline_seconds,
        "budget": budget,
        "campaign_deadline_seconds": campaign_deadline_seconds,
        "budget_retries": budget_retries,
        "budget_backoff": budget_backoff,
        "telemetry": telemetry,
        "progress": progress,
    }
    if backend == "fork" and (
        "fork" not in multiprocessing.get_all_start_methods()
    ):
        backend = "inline"
    if backend == "inline":
        reports = [_run_shard(prop, s, opts, ctx, observe) for s in shards]
    elif backend == "thread":
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            reports = list(
                pool.map(lambda s: _run_shard(prop, s, opts, ctx, observe), shards)
            )
    elif backend == "fork":
        global _FORK_STATE
        mp = multiprocessing.get_context("fork")
        previous = _FORK_STATE
        _FORK_STATE = (prop, opts, ctx, observe)
        try:
            with mp.Pool(processes=min(len(shards), workers)) as pool:
                reports = pool.map(_fork_worker, shards)
        finally:
            _FORK_STATE = previous
    else:
        raise ValueError(
            f"unknown backend {backend!r} (expected 'fork', 'thread', "
            "or 'inline')"
        )
    return CheckReport.merge(reports, property_name=prop.name)
