"""Campaign resilience: budgeted ``quick_check`` loops that cannot hang.

:func:`repro.quickchick.runner.quick_check` delegates here whenever a
resource limit is requested.  The campaign loop is the plain runner
loop — same RNG stream, same discard accounting, so a budget that never
trips replays a seed identically — wrapped in three defenses:

* **per-test budgets**: every test draw runs under a fresh
  :class:`~repro.resilience.budget.Budget` renewed from the template,
  so one pathological case exhausts its own budget, answers
  indefinitely, and cannot wedge the campaign;
* **retry with reseed + exponential backoff**: a budget-tripped test is
  redrawn (the RNG stream continues — a fresh draw is a fresh case)
  under a budget scaled by *backoff*, up to *retries* times, then
  counted as a discard (its verdict under the tripped budget is
  discarded too: only untripped runs contribute verdicts);
* **a circuit breaker**: when the mean op cost of the last few tests
  blows up relative to the campaign's baseline — the signature of a
  generator drifting into an exponential region of the search space —
  the campaign aborts with a partial report and
  ``CheckReport.stopped_reason`` instead of grinding to the deadline.

A whole-campaign deadline (*campaign_deadline_seconds*) bounds the loop
itself; on expiry the report is returned with whatever completed.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any

from ..derive.trace import BUDGET_KEY
from ..quickchick.property import DISCARD, FAILED
from ..quickchick.runner import CheckReport
from .budget import Budget

__all__ = ["CircuitBreaker", "run_campaign", "write_report_jsonl"]


class CircuitBreaker:
    """Detects per-test step-cost blowup across consecutive tests.

    Feeds on the op cost of each completed test; opens (returns a
    reason string) when the mean cost of the last *window* tests
    exceeds *factor* times the mean of the earlier tests.  Needs at
    least *min_samples* tests before it can open, so short campaigns
    and noisy starts never false-positive.

    Costs need not be op counts: the serving layer's overload
    controller (:class:`repro.serve.admission.OverloadController`)
    feeds per-query service *seconds* to detect latency blowup.  For
    such long-lived consumers *max_history* bounds the retained cost
    list (the baseline then is the older half of the retained
    history, a sliding reference instead of campaign-lifetime), and
    :meth:`reset` re-baselines after a recovery.  *floor* is the
    minimum baseline mean the blowup ratio divides by — the default
    ``1.0`` suits op counts (a test costs at least one op); seconds-
    scale consumers must lower it or a sub-second baseline clamps to
    one second and hides every blowup.
    """

    def __init__(
        self,
        window: int = 8,
        factor: float = 16.0,
        min_samples: int = 16,
        max_history: "int | None" = None,
        floor: float = 1.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if max_history is not None and max_history <= window:
            raise ValueError("max_history must exceed window")
        if floor <= 0:
            raise ValueError("floor must be > 0")
        self.window = window
        self.factor = factor
        self.min_samples = min_samples
        self.max_history = max_history
        self.floor = floor
        self.costs: list[float] = []

    def reset(self) -> None:
        """Drop all history — the next *min_samples* costs build a
        fresh baseline."""
        self.costs.clear()

    def record(self, cost: float) -> "str | None":
        """Record one test's op cost; a string means "open the breaker"."""
        self.costs.append(cost)
        if (
            self.max_history is not None
            and len(self.costs) > self.max_history
        ):
            del self.costs[: len(self.costs) - self.max_history]
        n = len(self.costs)
        if n < max(self.min_samples, self.window + 1):
            return None
        recent = self.costs[-self.window:]
        recent_mean = sum(recent) / len(recent)
        baseline = self.costs[: n - self.window]
        baseline_mean = max(sum(baseline) / len(baseline), self.floor)
        if recent_mean > self.factor * baseline_mean:
            return (
                f"circuit breaker: mean cost of last {self.window} tests "
                f"({recent_mean:,.0f} ops) exceeds {self.factor:g}x the "
                f"campaign baseline ({baseline_mean:,.0f} ops)"
            )
        return None


def run_campaign(
    prop: Any,
    *,
    num_tests: int = 1000,
    size: int = 5,
    seed: "int | None" = None,
    max_discard_ratio: int = 10,
    stop_on_failure: bool = True,
    observe: Any = None,
    deadline_seconds: "float | None" = None,
    budget: "Budget | None" = None,
    campaign_deadline_seconds: "float | None" = None,
    retries: int = 1,
    backoff: float = 2.0,
    breaker: "CircuitBreaker | None" = None,
    ctx: Any = None,
    telemetry: Any = None,
    progress: Any = None,
) -> CheckReport:
    """The budgeted ``quick_check`` loop (see the module docstring).

    *budget* is the per-test template (renewed fresh per attempt);
    *deadline_seconds* is shorthand for ``Budget(deadline_seconds=...)``.
    *ctx* is the context the budget governs, defaulting to
    ``budget.ctx`` and then *observe*.  *telemetry* / *progress*
    record per-test events and live counters exactly as in
    :func:`~repro.quickchick.runner.quick_check`.
    """
    if observe is not None:
        from ..observe import observe as _observe

        with _observe(observe) as obs:
            report = run_campaign(
                prop,
                num_tests=num_tests,
                size=size,
                seed=seed,
                max_discard_ratio=max_discard_ratio,
                stop_on_failure=stop_on_failure,
                deadline_seconds=deadline_seconds,
                budget=budget,
                campaign_deadline_seconds=campaign_deadline_seconds,
                retries=retries,
                backoff=backoff,
                breaker=breaker,
                ctx=ctx if ctx is not None else observe,
                telemetry=telemetry,
                progress=progress,
            )
        report.observation = obs
        return report
    template = budget
    if template is None and deadline_seconds is not None:
        template = Budget(deadline_seconds=deadline_seconds)
    if ctx is None and template is not None:
        ctx = template.ctx
    if template is not None and ctx is None:
        raise TypeError(
            "a budgeted quick_check needs the governed context: pass "
            "ctx=..., a Budget built with ctx=..., or observe=ctx"
        )
    if template is not None:
        template.ctx = ctx  # renew() propagates it to each per-test budget
    if seed is None:
        # OS-entropy fallback, immune to user random.seed() calls —
        # see the matching draw in repro.quickchick.runner.
        from ..quickchick.runner import _SEED_SOURCE

        seed = _SEED_SOURCE.randrange(2**63)
    rng = random.Random(seed)
    report = CheckReport(
        property_name=prop.name, seed=seed, size=size, telemetry=telemetry
    )
    max_discards = max_discard_ratio * num_tests
    if breaker is None:
        breaker = CircuitBreaker()
    caches = ctx.caches if ctx is not None else None
    previous = caches.get(BUDGET_KEY) if caches is not None else None
    start = time.perf_counter()
    try:
        while report.tests_run < num_tests:
            if (
                campaign_deadline_seconds is not None
                and time.perf_counter() - start > campaign_deadline_seconds
            ):
                report.stopped_reason = (
                    f"campaign deadline ({campaign_deadline_seconds:g}s) "
                    f"exceeded after {report.tests_run} tests"
                )
                break
            retries_before = report.budget_retries
            t0 = time.perf_counter() if telemetry is not None else 0.0
            case, cost = _run_one(
                prop, size, rng, template, caches, report, retries, backoff
            )
            if telemetry is not None:
                status = (
                    "gave_up" if case is None
                    else "discard" if case.status == DISCARD
                    else "failed" if case.status == FAILED
                    else "ok"
                )
                telemetry.record_test(
                    prop.name, status, time.perf_counter() - t0,
                    retries=report.budget_retries - retries_before,
                )
            if case is None:
                # Budget-tripped past its retries: the test is skipped
                # as a discard (its interrupted verdict is not trusted).
                report.discards += 1
                if progress is not None:
                    progress(report)
                if report.discards > max_discards:
                    report.gave_up = True
                    break
                continue
            if case.status == DISCARD:
                report.discards += 1
                if progress is not None:
                    progress(report)
                if report.discards > max_discards:
                    report.gave_up = True
                    break
                continue
            report.tests_run += 1
            for label in case.labels:
                report.labels[label] = report.labels.get(label, 0) + 1
            if progress is not None:
                progress(report)
            if cost is not None:
                reason = breaker.record(cost)
                if reason is not None:
                    report.stopped_reason = reason
                    break
            if case.status == FAILED:
                report.failed = True
                report.counterexample = case.input
                if stop_on_failure:
                    break
    finally:
        if caches is not None:
            if previous is None:
                caches.pop(BUDGET_KEY, None)
            else:
                caches[BUDGET_KEY] = previous
    report.elapsed_seconds = time.perf_counter() - start
    return report


def _run_one(prop, size, rng, template, caches, report, retries, backoff):
    """One test: up to ``1 + retries`` draws, each under a fresh budget
    renewed from the template (scaled by *backoff* per retry).

    Returns ``(case, cost)``; ``(None, None)`` when every attempt
    tripped its budget.
    """
    if template is None:
        return prop.run(size, rng), None
    scale = 1.0
    attempt = 0
    while True:
        bud = template.renew(scale)
        caches[BUDGET_KEY] = bud
        bud.start()
        case = prop.run(size, rng)
        if bud.exhausted is None:
            return case, bud.ops
        report.budget_trips += 1
        report.exhausted = bud.exhausted
        if attempt >= retries:
            return None, None
        attempt += 1
        report.budget_retries += 1
        scale *= backoff


def write_report_jsonl(reports, path) -> None:
    """Write reports (one or many) as JSON Lines — the export consumed
    by ``python -m repro.resilience``."""
    if isinstance(reports, CheckReport):
        reports = [reports]
    with open(path, "w", encoding="utf-8") as fh:
        for report in reports:
            fh.write(json.dumps(report.to_dict()) + "\n")
