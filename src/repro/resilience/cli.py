"""``python -m repro.resilience``: render budgeted campaign reports.

Usage::

    python -m repro.resilience campaign.jsonl

Reads a JSON-lines export of :class:`~repro.quickchick.runner.
CheckReport` dicts (see :func:`~repro.resilience.campaign.
write_report_jsonl`) and pretty-prints each report — including the
``Exhausted`` diagnosis and stop reason of interrupted campaigns.

The exit status encodes the worst outcome across all reports, so the
command composes into shell pipelines and CI gates:

* ``0`` — every campaign passed cleanly;
* ``1`` — a campaign failed, gave up, or was stopped early;
* ``2`` — a resource budget was exhausted (trips / ``Exhausted``);
* ``3`` — the file is unreadable or not a report export.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "render_report_dict"]

EXIT_CLEAN = 0
EXIT_GAVE_UP = 1
EXIT_EXHAUSTED = 2
EXIT_UNREADABLE = 3


def render_report_dict(rec: dict) -> str:
    """Pretty-print one exported ``CheckReport`` dict."""
    name = rec.get("property_name", "<property>")
    lines = [f"== {name} =="]
    if rec.get("failed"):
        lines.append(
            f"*** Failed after {rec.get('tests_run', 0)} tests and "
            f"{rec.get('discards', 0)} discards "
            f"(seed={rec.get('seed')}, size={rec.get('size')})"
        )
        if rec.get("counterexample"):
            lines.append(f"    counterexample: {rec['counterexample']}")
    elif rec.get("gave_up"):
        lines.append(
            f"*** Gave up after {rec.get('discards', 0)} discards "
            f"({rec.get('tests_run', 0)} tests; "
            f"seed={rec.get('seed')}, size={rec.get('size')})"
        )
    else:
        lines.append(
            f"+++ Passed {rec.get('tests_run', 0)} tests "
            f"({rec.get('discards', 0)} discards, "
            f"{rec.get('elapsed_seconds', 0.0):.3f}s)"
        )
    if rec.get("stopped_reason"):
        lines.append(f"*** Stopped early: {rec['stopped_reason']}")
    if rec.get("budget_trips"):
        lines.append(
            f"    {rec['budget_trips']} budget-tripped tests "
            f"({rec.get('budget_retries', 0)} retries)"
        )
    exhausted = rec.get("exhausted")
    if exhausted:
        limit = exhausted.get("limit", "?")
        lines.append(
            f"*** Exhausted: {limit} limit tripped after "
            f"{exhausted.get('ops', 0):,} ops / "
            f"{exhausted.get('elapsed_seconds', 0.0):.3f}s"
        )
        site = exhausted.get("site")
        if site:
            lines.append(f"    at {site[0]}:{site[1]}[{site[2]}]")
        limits = exhausted.get("limits") or {}
        shown = ", ".join(
            f"{k}={v}" for k, v in limits.items() if v is not None
        )
        if shown:
            lines.append(f"    budget: {shown}")
    labels = rec.get("labels") or {}
    tests = rec.get("tests_run", 0)
    if labels and tests:
        for label, n in sorted(labels.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"    {100 * n / tests:5.1f}% {label}")
    return "\n".join(lines)


def _classify(rec: dict) -> int:
    if rec.get("exhausted") or rec.get("budget_trips"):
        return EXIT_EXHAUSTED
    if rec.get("failed") or rec.get("gave_up") or rec.get("stopped_reason"):
        return EXIT_GAVE_UP
    return EXIT_CLEAN


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description=(
            "Render budgeted quick_check campaign reports from a JSONL "
            "export (write_report_jsonl); exit code 0=clean, "
            "1=failed/gave-up/stopped, 2=budget exhausted, 3=unreadable."
        ),
    )
    parser.add_argument("export", help="JSON-lines CheckReport export")
    args = parser.parse_args(argv)

    records = []
    try:
        with open(args.export, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except OSError as exc:
        print(f"error: cannot read {args.export}: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.export} is not a JSONL export: {exc}",
            file=sys.stderr,
        )
        return EXIT_UNREADABLE
    if not records or not all(
        rec.get("kind") == "check_report" for rec in records
    ):
        print(
            f"error: {args.export} holds no check_report records "
            "(expected a write_report_jsonl export)",
            file=sys.stderr,
        )
        return EXIT_UNREADABLE

    status = EXIT_CLEAN
    try:
        for rec in records:
            print(render_report_dict(rec))
            status = max(status, _classify(rec))
    except BrokenPipeError:
        sys.stderr.close()
    return status
