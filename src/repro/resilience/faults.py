"""Deterministic fault injection: seeded schedules of interruptions.

The resilience layer's correctness claim — *interruption soundness* —
is that cutting a derived computation short at any point degrades its
answer toward indefiniteness and never flips a definite verdict.  That
claim is only testable if interruptions are **reproducible**: a
:class:`FaultPlan` is a seeded, sorted schedule of injections keyed by
**charge index** (the executor op counter maintained by
:class:`~repro.resilience.budget.Budget`), so a faulted run is exactly
replayable, and — because the interpreted and compiled backends charge
at identical sites in identical order — the same plan drives both
backends through the same interruptions.

Three fault kinds:

* ``"fuel"`` — a forced ``OUT_OF_FUEL``: the charging site answers
  indefinite *once* and the run continues (models a transient resource
  blip mid-search);
* ``"trip"`` — a forced budget exhaustion: latches, the whole run
  unwinds to its indefinite outcome (models deadline/op-cap expiry at
  an adversarial moment);
* ``"evict"`` — the memo tables are dropped at that instant (models
  cache pressure; must never change any answer).

``tests/resilience/test_fault_injection.py`` runs the sf corpus and
case studies under seeded plans and asserts: faulted definite verdicts
always agree with the unfaulted run, interp == compiled under the same
schedule, and no exhaustion-tainted result is ever served from the
memo as definite.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

__all__ = ["FAULT_KINDS", "FaultPlan", "WORKER_FAULT_KINDS", "WorkerFaultPlan"]

FAULT_KINDS = ("fuel", "trip", "evict")

WORKER_FAULT_KINDS = ("crash", "stall", "poison")


class FaultPlan:
    """An immutable, sorted schedule of ``(charge_index, kind)`` events.

    Build one explicitly (:meth:`from_events`) for targeted tests, or
    :meth:`seeded` for a reproducible random schedule.  Hand it to
    ``Budget(faults=plan)``; each :meth:`~repro.resilience.budget.
    Budget.renew` of that budget replays the same schedule from charge
    index zero (per-call fresh budgets → per-call identical faults).
    """

    __slots__ = ("events", "seed")

    def __init__(
        self,
        events: Iterable[tuple],
        seed: "int | None" = None,
    ) -> None:
        evs = []
        for op, kind in events:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            if op < 1:
                raise ValueError(f"fault index must be >= 1, got {op}")
            evs.append((int(op), kind))
        self.events: tuple = tuple(sorted(evs))
        self.seed = seed

    @classmethod
    def from_events(cls, *events: tuple) -> "FaultPlan":
        return cls(events)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_events: int = 6,
        horizon: int = 4096,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan: *n_events* injections at charge
        indices drawn from ``[1, horizon]``.  The draw order is fixed
        (index then kind, per event), so a given seed names the same
        schedule on every Python version and platform."""
        rng = random.Random(("fault-plan", seed).__repr__())
        events = [
            (rng.randint(1, horizon), kinds[rng.randrange(len(kinds))])
            for _ in range(n_events)
        ]
        return cls(events, seed=seed)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def as_dict(self) -> dict:
        return {
            "kind": "fault_plan",
            "seed": self.seed,
            "events": [list(e) for e in self.events],
        }

    def describe(self) -> str:
        head = f"FaultPlan({len(self.events)} events"
        head += f", seed={self.seed})" if self.seed is not None else ")"
        lines = [head]
        for op, kind in self.events:
            lines.append(f"  @op {op:>6,}: {kind}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, "
            f"events={list(self.events)!r})"
        )


class WorkerFaultPlan:
    """A seeded schedule of **serving-layer** worker faults.

    Where :class:`FaultPlan` interrupts one derived computation at a
    charge index, a ``WorkerFaultPlan`` attacks the *engine* around
    the computations: events are ``(worker, nth, kind)`` — when worker
    *worker* is about to serve its *nth* query (1-based, counted per
    worker index across restarts, so a crash event fires exactly
    once), the named fault fires:

    * ``"crash"`` — the worker thread raises before serving; the
      in-flight query resolves as a structured error, the rest of its
      chunk is requeued, and the supervisor restarts the worker
      (models a segfaulting native extension or an OOM kill);
    * ``"stall"`` — the worker sleeps *stall_seconds* before serving
      (models GC pauses / CPU starvation; exercises deadline expiry
      and shed paths);
    * ``"poison"`` — the query's execution raises a non-``ReproError``
      (models a malformed value crossing the query boundary; exercises
      per-query isolation — chunk neighbors must still get real
      answers).

    The serving chaos suite (``tests/serve/test_chaos.py``) runs
    seeded plans against an :class:`~repro.serve.engine.Engine` and
    asserts the liveness invariant: every submitted future resolves,
    and every ``ok`` answer equals the fault-free run's.
    """

    __slots__ = ("events", "seed", "stall_seconds", "_table")

    def __init__(
        self,
        events: Iterable[tuple],
        seed: "int | None" = None,
        stall_seconds: float = 0.02,
    ) -> None:
        table: dict = {}
        for worker, nth, kind in events:
            if kind not in WORKER_FAULT_KINDS:
                raise ValueError(
                    f"unknown worker fault kind {kind!r}; "
                    f"expected one of {WORKER_FAULT_KINDS}"
                )
            if worker < 0:
                raise ValueError(f"worker index must be >= 0, got {worker}")
            if nth < 1:
                raise ValueError(f"query ordinal must be >= 1, got {nth}")
            table.setdefault((int(worker), int(nth)), kind)
        self._table = table
        self.events = tuple(
            sorted((w, n, k) for (w, n), k in table.items())
        )
        self.seed = seed
        self.stall_seconds = stall_seconds

    @classmethod
    def from_events(cls, *events: tuple, **kwargs) -> "WorkerFaultPlan":
        return cls(events, **kwargs)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        workers: int = 2,
        n_events: int = 4,
        horizon: int = 24,
        kinds: Sequence[str] = WORKER_FAULT_KINDS,
        stall_seconds: float = 0.02,
    ) -> "WorkerFaultPlan":
        """A reproducible random plan: *n_events* faults spread over
        *workers* workers at per-worker query ordinals in
        ``[1, horizon]``.  Fixed draw order (worker, ordinal, kind per
        event), so a seed names the same schedule everywhere."""
        rng = random.Random(("worker-fault-plan", seed).__repr__())
        events = [
            (
                rng.randrange(workers),
                rng.randint(1, horizon),
                kinds[rng.randrange(len(kinds))],
            )
            for _ in range(n_events)
        ]
        return cls(events, seed=seed, stall_seconds=stall_seconds)

    def draw(self, worker: int, nth: int) -> "str | None":
        """The fault due when *worker* serves its *nth* query, or
        ``None``.  A pure lookup — the engine's per-worker ordinal
        counters persist across restarts, so each event fires once."""
        return self._table.get((worker, nth))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def as_dict(self) -> dict:
        return {
            "kind": "worker_fault_plan",
            "seed": self.seed,
            "stall_seconds": self.stall_seconds,
            "events": [list(e) for e in self.events],
        }

    def describe(self) -> str:
        head = f"WorkerFaultPlan({len(self.events)} events"
        head += f", seed={self.seed})" if self.seed is not None else ")"
        lines = [head]
        for worker, nth, kind in self.events:
            lines.append(f"  worker {worker} @query {nth:>4}: {kind}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"WorkerFaultPlan(seed={self.seed}, "
            f"events={list(self.events)!r})"
        )
