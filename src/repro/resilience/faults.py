"""Deterministic fault injection: seeded schedules of interruptions.

The resilience layer's correctness claim — *interruption soundness* —
is that cutting a derived computation short at any point degrades its
answer toward indefiniteness and never flips a definite verdict.  That
claim is only testable if interruptions are **reproducible**: a
:class:`FaultPlan` is a seeded, sorted schedule of injections keyed by
**charge index** (the executor op counter maintained by
:class:`~repro.resilience.budget.Budget`), so a faulted run is exactly
replayable, and — because the interpreted and compiled backends charge
at identical sites in identical order — the same plan drives both
backends through the same interruptions.

Three fault kinds:

* ``"fuel"`` — a forced ``OUT_OF_FUEL``: the charging site answers
  indefinite *once* and the run continues (models a transient resource
  blip mid-search);
* ``"trip"`` — a forced budget exhaustion: latches, the whole run
  unwinds to its indefinite outcome (models deadline/op-cap expiry at
  an adversarial moment);
* ``"evict"`` — the memo tables are dropped at that instant (models
  cache pressure; must never change any answer).

``tests/resilience/test_fault_injection.py`` runs the sf corpus and
case studies under seeded plans and asserts: faulted definite verdicts
always agree with the unfaulted run, interp == compiled under the same
schedule, and no exhaustion-tainted result is ever served from the
memo as definite.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

__all__ = ["FAULT_KINDS", "FaultPlan"]

FAULT_KINDS = ("fuel", "trip", "evict")


class FaultPlan:
    """An immutable, sorted schedule of ``(charge_index, kind)`` events.

    Build one explicitly (:meth:`from_events`) for targeted tests, or
    :meth:`seeded` for a reproducible random schedule.  Hand it to
    ``Budget(faults=plan)``; each :meth:`~repro.resilience.budget.
    Budget.renew` of that budget replays the same schedule from charge
    index zero (per-call fresh budgets → per-call identical faults).
    """

    __slots__ = ("events", "seed")

    def __init__(
        self,
        events: Iterable[tuple],
        seed: "int | None" = None,
    ) -> None:
        evs = []
        for op, kind in events:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            if op < 1:
                raise ValueError(f"fault index must be >= 1, got {op}")
            evs.append((int(op), kind))
        self.events: tuple = tuple(sorted(evs))
        self.seed = seed

    @classmethod
    def from_events(cls, *events: tuple) -> "FaultPlan":
        return cls(events)

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_events: int = 6,
        horizon: int = 4096,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan: *n_events* injections at charge
        indices drawn from ``[1, horizon]``.  The draw order is fixed
        (index then kind, per event), so a given seed names the same
        schedule on every Python version and platform."""
        rng = random.Random(("fault-plan", seed).__repr__())
        events = [
            (rng.randint(1, horizon), kinds[rng.randrange(len(kinds))])
            for _ in range(n_events)
        ]
        return cls(events, seed=seed)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def as_dict(self) -> dict:
        return {
            "kind": "fault_plan",
            "seed": self.seed,
            "events": [list(e) for e in self.events],
        }

    def describe(self) -> str:
        head = f"FaultPlan({len(self.events)} events"
        head += f", seed={self.seed})" if self.seed is not None else ")"
        lines = [head]
        for op, kind in self.events:
            lines.append(f"  @op {op:>6,}: {kind}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, "
            f"events={list(self.events)!r})"
        )
