"""Entry point for ``python -m repro.resilience``."""

import sys

from .cli import main

sys.exit(main())
