"""PLF, chapter *References* — STLCRef (mutable references).

Stores are lists of values, locations are indices; the step relation
carries a store on both sides, and typing carries a store typing.
``store_lookup`` / ``store_update`` are the list-indexing relations.
"""

VOLUME = "PLF"
CHAPTER = "References"

DECLARATIONS = """
Inductive ty : Type :=
| RfNat : ty
| RfUnit : ty
| RfArrow : ty -> ty -> ty
| RfRef : ty -> ty.

Inductive tm : Type :=
| fvar : nat -> tm
| fapp : tm -> tm -> tm
| fabs : nat -> ty -> tm -> tm
| fconst : nat -> tm
| fsucc : tm -> tm
| funit : tm
| fref : tm -> tm
| fderef : tm -> tm
| fassign : tm -> tm -> tm
| floc : nat -> tm.

Inductive fvalue : tm -> Prop :=
| fv_abs : forall x T t, fvalue (fabs x T t)
| fv_const : forall n, fvalue (fconst n)
| fv_unit : fvalue funit
| fv_loc : forall l, fvalue (floc l).

Inductive fsubst : tm -> nat -> tm -> tm -> Prop :=
| fs_var_eq : forall s x, fsubst s x (fvar x) s
| fs_var_neq : forall s x y, x <> y -> fsubst s x (fvar y) (fvar y)
| fs_app : forall s x t1 t2 t1' t2',
    fsubst s x t1 t1' -> fsubst s x t2 t2' ->
    fsubst s x (fapp t1 t2) (fapp t1' t2')
| fs_abs_eq : forall s x T t, fsubst s x (fabs x T t) (fabs x T t)
| fs_abs_neq : forall s x y T t t',
    x <> y -> fsubst s x t t' -> fsubst s x (fabs y T t) (fabs y T t')
| fs_const : forall s x n, fsubst s x (fconst n) (fconst n)
| fs_succ : forall s x t t',
    fsubst s x t t' -> fsubst s x (fsucc t) (fsucc t')
| fs_unit : forall s x, fsubst s x funit funit
| fs_ref : forall s x t t', fsubst s x t t' -> fsubst s x (fref t) (fref t')
| fs_deref : forall s x t t',
    fsubst s x t t' -> fsubst s x (fderef t) (fderef t')
| fs_assign : forall s x t1 t2 t1' t2',
    fsubst s x t1 t1' -> fsubst s x t2 t2' ->
    fsubst s x (fassign t1 t2) (fassign t1' t2')
| fs_loc : forall s x l, fsubst s x (floc l) (floc l).

(* Store indexing and functional update, relationally. *)
Inductive store_lookup : nat -> list tm -> tm -> Prop :=
| sl_here : forall v st, store_lookup 0 (v :: st) v
| sl_later : forall n v w st,
    store_lookup n st v -> store_lookup (S n) (w :: st) v.

Inductive store_update : nat -> tm -> list tm -> list tm -> Prop :=
| su_here : forall v w st, store_update 0 v (w :: st) (v :: st)
| su_later : forall n v w st st',
    store_update n v st st' -> store_update (S n) v (w :: st) (w :: st').

Inductive fstep : tm -> list tm -> tm -> list tm -> Prop :=
| FST_AppAbs : forall x T t v st t',
    fvalue v -> fsubst v x t t' -> fstep (fapp (fabs x T t) v) st t' st
| FST_App1 : forall t1 t1' t2 st st',
    fstep t1 st t1' st' -> fstep (fapp t1 t2) st (fapp t1' t2) st'
| FST_App2 : forall v t2 t2' st st',
    fvalue v -> fstep t2 st t2' st' -> fstep (fapp v t2) st (fapp v t2') st'
| FST_SuccNat : forall n st, fstep (fsucc (fconst n)) st (fconst (S n)) st
| FST_Succ : forall t t' st st',
    fstep t st t' st' -> fstep (fsucc t) st (fsucc t') st'
| FST_RefValue : forall v st n,
    fvalue v -> length st = n -> fstep (fref v) st (floc n) (st ++ [v])
| FST_Ref : forall t t' st st',
    fstep t st t' st' -> fstep (fref t) st (fref t') st'
| FST_DerefLoc : forall l st v,
    store_lookup l st v -> fstep (fderef (floc l)) st v st
| FST_Deref : forall t t' st st',
    fstep t st t' st' -> fstep (fderef t) st (fderef t') st'
| FST_Assign : forall l v st st',
    fvalue v -> store_update l v st st' ->
    fstep (fassign (floc l) v) st funit st'
| FST_Assign1 : forall t1 t1' t2 st st',
    fstep t1 st t1' st' -> fstep (fassign t1 t2) st (fassign t1' t2) st'
| FST_Assign2 : forall v t2 t2' st st',
    fvalue v -> fstep t2 st t2' st' ->
    fstep (fassign v t2) st (fassign v t2') st'.

Inductive flookup : list (prod nat ty) -> nat -> ty -> Prop :=
| fl_here : forall x T G, flookup ((x, T) :: G) x T
| fl_later : forall x y T U G,
    x <> y -> flookup G x T -> flookup ((y, U) :: G) x T.

(* Store typings are lists of types, indexed positionally. *)
Inductive stty_lookup : nat -> list ty -> ty -> Prop :=
| stl_here : forall T ST, stty_lookup 0 (T :: ST) T
| stl_later : forall n T U ST,
    stty_lookup n ST T -> stty_lookup (S n) (U :: ST) T.

Inductive f_has_type : list (prod nat ty) -> list ty -> tm -> ty -> Prop :=
| FT_Var : forall G ST x T, flookup G x T -> f_has_type G ST (fvar x) T
| FT_Abs : forall G ST x T1 T2 t,
    f_has_type ((x, T1) :: G) ST t T2 ->
    f_has_type G ST (fabs x T1 t) (RfArrow T1 T2)
| FT_App : forall G ST t1 t2 T1 T2,
    f_has_type G ST t1 (RfArrow T1 T2) -> f_has_type G ST t2 T1 ->
    f_has_type G ST (fapp t1 t2) T2
| FT_Const : forall G ST n, f_has_type G ST (fconst n) RfNat
| FT_Succ : forall G ST t,
    f_has_type G ST t RfNat -> f_has_type G ST (fsucc t) RfNat
| FT_Unit : forall G ST, f_has_type G ST funit RfUnit
| FT_Loc : forall G ST l T,
    stty_lookup l ST T -> f_has_type G ST (floc l) (RfRef T)
| FT_Ref : forall G ST t T,
    f_has_type G ST t T -> f_has_type G ST (fref t) (RfRef T)
| FT_Deref : forall G ST t T,
    f_has_type G ST t (RfRef T) -> f_has_type G ST (fderef t) T
| FT_Assign : forall G ST t1 t2 T,
    f_has_type G ST t1 (RfRef T) -> f_has_type G ST t2 T ->
    f_has_type G ST (fassign t1 t2) RfUnit.
"""

HIGHER_ORDER = [
    ("store_well_typed", "universally quantifies over all locations"),
    ("extends", "defined over store typings via quantification"),
]
