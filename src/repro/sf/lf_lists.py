"""LF, chapters *Lists*, *Poly*, and *Logic* — list-shaped relations.

SF states most list facts as functions plus theorems; the inductive
relations here are the chapter exercises that ask for relational
characterizations (membership, ordering by indices, disjointness) plus
the ``In``-style predicates the later chapters keep reusing,
monomorphized at ``nat`` (the paper's derivations also operate on
instantiated relations; see Relation.instantiate).

Out of scope: ``All``/``Any`` over an arbitrary predicate ``P : A ->
Prop`` and ``excluded_middle``-style statements quantify over
propositions.
"""

VOLUME = "LF"
CHAPTER = "Lists/Poly/Logic"

DECLARATIONS = """
Inductive In : nat -> list nat -> Prop :=
| In_head : forall x l, In x (x :: l)
| In_tail : forall x y l, In x l -> In x (y :: l).

Inductive last_of : nat -> list nat -> Prop :=
| last_one : forall x, last_of x [x]
| last_more : forall x y l, last_of x l -> last_of x (y :: l).

Inductive prefix_of : list nat -> list nat -> Prop :=
| prefix_nil : forall l, prefix_of [] l
| prefix_cons : forall x l1 l2,
    prefix_of l1 l2 -> prefix_of (x :: l1) (x :: l2).

Inductive suffix_of : list nat -> list nat -> Prop :=
| suffix_here : forall l, suffix_of l l
| suffix_later : forall x l1 l2, suffix_of l1 l2 -> suffix_of l1 (x :: l2).

Inductive lenrel : list nat -> nat -> Prop :=
| len_nil : lenrel [] 0
| len_cons : forall x l n, lenrel l n -> lenrel (x :: l) (S n).

Inductive apprel : list nat -> list nat -> list nat -> Prop :=
| app_nil : forall l, apprel [] l l
| app_cons : forall x l1 l2 l3,
    apprel l1 l2 l3 -> apprel (x :: l1) l2 (x :: l3).

Inductive revrel : list nat -> list nat -> Prop :=
| rev_nil : revrel [] []
| rev_cons : forall x l r,
    revrel l r -> revrel (x :: l) (r ++ [x]).

Inductive disjoint : list nat -> list nat -> Prop :=
| disj_nil : forall l, disjoint [] l
| disj_cons : forall x l1 l2,
    ~ In x l2 -> disjoint l1 l2 -> disjoint (x :: l1) l2.

Inductive count_rel : nat -> list nat -> nat -> Prop :=
| count_nil : forall x, count_rel x [] 0
| count_hit : forall x l n,
    count_rel x l n -> count_rel x (x :: l) (S n)
| count_miss : forall x y l n,
    x <> y -> count_rel x l n -> count_rel x (y :: l) n.
"""

HIGHER_ORDER = [
    ("All", "All P l quantifies over a predicate P : A -> Prop"),
    ("Any", "quantifies over a predicate"),
    ("combine_odd_even", "builds propositions from functions"),
]
