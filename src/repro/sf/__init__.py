"""The Software Foundations relation corpus (Section 6.1 / Table 1)."""

from .registry import (
    CHAPTER_MODULES,
    Chapter,
    CorpusEntry,
    Table1Row,
    census_relation,
    format_table1,
    load_chapter,
    load_corpus,
    table1,
)

__all__ = [
    "CHAPTER_MODULES",
    "Chapter",
    "CorpusEntry",
    "Table1Row",
    "census_relation",
    "format_table1",
    "load_chapter",
    "load_corpus",
    "table1",
]
