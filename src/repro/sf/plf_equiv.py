"""PLF, chapter *Equiv* — program equivalence.

The equivalence notions themselves (``aequiv``/``bequiv``/``cequiv``)
are universally quantified over states, hence out of scope; the
chapter's in-scope inductive relations are ``var_not_used_in_aexp``
and the HIMP extension (IMP plus a nondeterministic ``HAVOC``).
"""

VOLUME = "PLF"
CHAPTER = "Equiv"

DECLARATIONS = """
Inductive aexp : Type :=
| ANum : nat -> aexp
| AId : nat -> aexp
| APlus : aexp -> aexp -> aexp
| AMinus : aexp -> aexp -> aexp
| AMult : aexp -> aexp -> aexp.

Inductive var_not_used_in_aexp : nat -> aexp -> Prop :=
| VNUNum : forall x n, var_not_used_in_aexp x (ANum n)
| VNUId : forall x y, x <> y -> var_not_used_in_aexp x (AId y)
| VNUPlus : forall x a1 a2,
    var_not_used_in_aexp x a1 -> var_not_used_in_aexp x a2 ->
    var_not_used_in_aexp x (APlus a1 a2)
| VNUMinus : forall x a1 a2,
    var_not_used_in_aexp x a1 -> var_not_used_in_aexp x a2 ->
    var_not_used_in_aexp x (AMinus a1 a2)
| VNUMult : forall x a1 a2,
    var_not_used_in_aexp x a1 -> var_not_used_in_aexp x a2 ->
    var_not_used_in_aexp x (AMult a1 a2).

(* HIMP: IMP plus HAVOC (nondeterministic assignment). *)
Inductive hcom : Type :=
| HSkip : hcom
| HAss : nat -> aexp -> hcom
| HSeq : hcom -> hcom -> hcom
| HHavoc : nat -> hcom.

Inductive lookup_st : list (prod nat nat) -> nat -> nat -> Prop :=
| lk_nil : forall x, lookup_st [] x 0
| lk_here : forall x v st, lookup_st ((x, v) :: st) x v
| lk_later : forall x y v w st,
    x <> y -> lookup_st st x v -> lookup_st ((y, w) :: st) x v.

Inductive haevalR : list (prod nat nat) -> aexp -> nat -> Prop :=
| HE_ANum : forall st n, haevalR st (ANum n) n
| HE_AId : forall st x v, lookup_st st x v -> haevalR st (AId x) v
| HE_APlus : forall st a1 a2 n1 n2,
    haevalR st a1 n1 -> haevalR st a2 n2 ->
    haevalR st (APlus a1 a2) (n1 + n2)
| HE_AMinus : forall st a1 a2 n1 n2,
    haevalR st a1 n1 -> haevalR st a2 n2 ->
    haevalR st (AMinus a1 a2) (n1 - n2)
| HE_AMult : forall st a1 a2 n1 n2,
    haevalR st a1 n1 -> haevalR st a2 n2 ->
    haevalR st (AMult a1 a2) (n1 * n2).

Inductive hceval : hcom -> list (prod nat nat) -> list (prod nat nat) -> Prop :=
| HE_Skip : forall st, hceval HSkip st st
| HE_Ass : forall st x a n,
    haevalR st a n -> hceval (HAss x a) st ((x, n) :: st)
| HE_Seq : forall c1 c2 st st1 st2,
    hceval c1 st st1 -> hceval c2 st1 st2 -> hceval (HSeq c1 c2) st st2
| HE_Havoc : forall st x n, hceval (HHavoc x) st ((x, n) :: st).
"""

HIGHER_ORDER = [
    ("aequiv", "forall st, aeval st a1 = aeval st a2 — quantifies over all states"),
    ("bequiv", "quantifies over all states"),
    ("cequiv", "quantifies over all states and both evaluation directions"),
    ("ctrans_sound", "quantifies over transformations (functions)"),
]
