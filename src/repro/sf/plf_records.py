"""PLF, chapter *Records* — STLC with records.

Records are encoded, as in the book, by cons-like type and term
constructors (``RTNil``/``RTCons`` and ``rnil``/``rcons``), which makes
well-formedness (``record_ty``/``record_tm``/``well_formed_ty``) and
field lookup (``rty_lookup``/``rtm_lookup``) inductive relations of
their own.
"""

VOLUME = "PLF"
CHAPTER = "Records"

DECLARATIONS = """
Inductive ty : Type :=
| RBase : nat -> ty
| RArrow : ty -> ty -> ty
| RTNil : ty
| RTCons : nat -> ty -> ty -> ty.

Inductive tm : Type :=
| rvar : nat -> tm
| rapp : tm -> tm -> tm
| rabs : nat -> ty -> tm -> tm
| rproj : tm -> nat -> tm
| rnil : tm
| rcons : nat -> tm -> tm -> tm.

(* Which types are record types / well formed (the book's mutual
   informal condition, stratified as in the chapter). *)
Inductive record_ty : ty -> Prop :=
| RTnil : record_ty RTNil
| RTcons : forall i T Tr, record_ty Tr -> record_ty (RTCons i T Tr).

Inductive well_formed_ty : ty -> Prop :=
| wfBase : forall i, well_formed_ty (RBase i)
| wfArrow : forall T1 T2,
    well_formed_ty T1 -> well_formed_ty T2 ->
    well_formed_ty (RArrow T1 T2)
| wfRNil : well_formed_ty RTNil
| wfRCons : forall i T Tr,
    well_formed_ty T -> well_formed_ty Tr -> record_ty Tr ->
    well_formed_ty (RTCons i T Tr).

Inductive record_tm : tm -> Prop :=
| rtnil : record_tm rnil
| rtcons : forall i t tr, record_tm tr -> record_tm (rcons i t tr).

(* Field lookup in record types and record terms. *)
Inductive rty_lookup : nat -> ty -> ty -> Prop :=
| rtl_here : forall i T Tr, rty_lookup i (RTCons i T Tr) T
| rtl_later : forall i j T U Tr,
    i <> j -> rty_lookup i Tr U -> rty_lookup i (RTCons j T Tr) U.

Inductive rtm_lookup : nat -> tm -> tm -> Prop :=
| rml_here : forall i t tr, rtm_lookup i (rcons i t tr) t
| rml_later : forall i j t u tr,
    i <> j -> rtm_lookup i tr u -> rtm_lookup i (rcons j t tr) u.

Inductive rvalue : tm -> Prop :=
| rv_abs : forall x T t, rvalue (rabs x T t)
| rv_rnil : rvalue rnil
| rv_rcons : forall i v vr, rvalue v -> rvalue vr -> rvalue (rcons i v vr).

Inductive rsubst : tm -> nat -> tm -> tm -> Prop :=
| rs_var_eq : forall s x, rsubst s x (rvar x) s
| rs_var_neq : forall s x y, x <> y -> rsubst s x (rvar y) (rvar y)
| rs_app : forall s x t1 t2 t1' t2',
    rsubst s x t1 t1' -> rsubst s x t2 t2' ->
    rsubst s x (rapp t1 t2) (rapp t1' t2')
| rs_abs_eq : forall s x T t, rsubst s x (rabs x T t) (rabs x T t)
| rs_abs_neq : forall s x y T t t',
    x <> y -> rsubst s x t t' -> rsubst s x (rabs y T t) (rabs y T t')
| rs_proj : forall s x t t' i,
    rsubst s x t t' -> rsubst s x (rproj t i) (rproj t' i)
| rs_rnil : forall s x, rsubst s x rnil rnil
| rs_rcons : forall s x i t tr t' tr',
    rsubst s x t t' -> rsubst s x tr tr' ->
    rsubst s x (rcons i t tr) (rcons i t' tr').

Inductive rstep : tm -> tm -> Prop :=
| RST_AppAbs : forall x T t v t',
    rvalue v -> rsubst v x t t' -> rstep (rapp (rabs x T t) v) t'
| RST_App1 : forall t1 t1' t2,
    rstep t1 t1' -> rstep (rapp t1 t2) (rapp t1' t2)
| RST_App2 : forall v t2 t2',
    rvalue v -> rstep t2 t2' -> rstep (rapp v t2) (rapp v t2')
| RST_Proj : forall t t' i,
    rstep t t' -> rstep (rproj t i) (rproj t' i)
| RST_ProjRcd : forall i vr v,
    rvalue vr -> rtm_lookup i vr v -> rstep (rproj vr i) v
| RST_Rcd1 : forall i t t' tr,
    rstep t t' -> rstep (rcons i t tr) (rcons i t' tr)
| RST_Rcd2 : forall i v tr tr',
    rvalue v -> rstep tr tr' -> rstep (rcons i v tr) (rcons i v tr').

Inductive rlookup : list (prod nat ty) -> nat -> ty -> Prop :=
| rl_here : forall x T G, rlookup ((x, T) :: G) x T
| rl_later : forall x y T U G,
    x <> y -> rlookup G x T -> rlookup ((y, U) :: G) x T.

Inductive r_has_type : list (prod nat ty) -> tm -> ty -> Prop :=
| RT_Var : forall G x T,
    rlookup G x T -> well_formed_ty T -> r_has_type G (rvar x) T
| RT_Abs : forall G x T1 T2 t,
    well_formed_ty T1 -> r_has_type ((x, T1) :: G) t T2 ->
    r_has_type G (rabs x T1 t) (RArrow T1 T2)
| RT_App : forall G t1 t2 T1 T2,
    r_has_type G t1 (RArrow T1 T2) -> r_has_type G t2 T1 ->
    r_has_type G (rapp t1 t2) T2
| RT_Proj : forall G t Tr i T,
    r_has_type G t Tr -> rty_lookup i Tr T ->
    r_has_type G (rproj t i) T
| RT_RNil : forall G, r_has_type G rnil RTNil
| RT_RCons : forall G i t T tr Tr,
    r_has_type G t T -> r_has_type G tr Tr ->
    record_ty Tr -> record_tm tr ->
    r_has_type G (rcons i t tr) (RTCons i T Tr).
"""

HIGHER_ORDER = []
