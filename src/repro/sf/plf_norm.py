"""PLF, chapter *Norm* — normalization of the STLC.

The chapter's language relations (value, step, typing over a
bool+pair STLC) are in scope; the logical relation ``R`` is defined by
recursion on types *into Prop* with quantification over reductions —
the canonical higher-order example.
"""

VOLUME = "PLF"
CHAPTER = "Norm"

DECLARATIONS = """
Inductive ty : Type :=
| NBool : ty
| NArrow : ty -> ty -> ty
| NProd : ty -> ty -> ty.

Inductive tm : Type :=
| nvar : nat -> tm
| napp : tm -> tm -> tm
| nabs : nat -> ty -> tm -> tm
| npair : tm -> tm -> tm
| nfst : tm -> tm
| nsnd : tm -> tm
| ntru : tm
| nfls : tm
| nite : tm -> tm -> tm -> tm.

Inductive nvalue : tm -> Prop :=
| nv_abs : forall x T t, nvalue (nabs x T t)
| nv_pair : forall v1 v2, nvalue v1 -> nvalue v2 -> nvalue (npair v1 v2)
| nv_tru : nvalue ntru
| nv_fls : nvalue nfls.

Inductive nsubst : tm -> nat -> tm -> tm -> Prop :=
| nsb_var_eq : forall s x, nsubst s x (nvar x) s
| nsb_var_neq : forall s x y, x <> y -> nsubst s x (nvar y) (nvar y)
| nsb_app : forall s x t1 t2 t1' t2',
    nsubst s x t1 t1' -> nsubst s x t2 t2' ->
    nsubst s x (napp t1 t2) (napp t1' t2')
| nsb_abs_eq : forall s x T t, nsubst s x (nabs x T t) (nabs x T t)
| nsb_abs_neq : forall s x y T t t',
    x <> y -> nsubst s x t t' -> nsubst s x (nabs y T t) (nabs y T t')
| nsb_pair : forall s x t1 t2 t1' t2',
    nsubst s x t1 t1' -> nsubst s x t2 t2' ->
    nsubst s x (npair t1 t2) (npair t1' t2')
| nsb_fst : forall s x t t', nsubst s x t t' -> nsubst s x (nfst t) (nfst t')
| nsb_snd : forall s x t t', nsubst s x t t' -> nsubst s x (nsnd t) (nsnd t')
| nsb_tru : forall s x, nsubst s x ntru ntru
| nsb_fls : forall s x, nsubst s x nfls nfls
| nsb_ite : forall s x c c' t1 t1' t2 t2',
    nsubst s x c c' -> nsubst s x t1 t1' -> nsubst s x t2 t2' ->
    nsubst s x (nite c t1 t2) (nite c' t1' t2').

Inductive nstep : tm -> tm -> Prop :=
| NST_AppAbs : forall x T t v t',
    nvalue v -> nsubst v x t t' -> nstep (napp (nabs x T t) v) t'
| NST_App1 : forall t1 t1' t2,
    nstep t1 t1' -> nstep (napp t1 t2) (napp t1' t2)
| NST_App2 : forall v t2 t2',
    nvalue v -> nstep t2 t2' -> nstep (napp v t2) (napp v t2')
| NST_Pair1 : forall t1 t1' t2,
    nstep t1 t1' -> nstep (npair t1 t2) (npair t1' t2)
| NST_Pair2 : forall v t2 t2',
    nvalue v -> nstep t2 t2' -> nstep (npair v t2) (npair v t2')
| NST_Fst : forall t t', nstep t t' -> nstep (nfst t) (nfst t')
| NST_FstPair : forall v1 v2,
    nvalue v1 -> nvalue v2 -> nstep (nfst (npair v1 v2)) v1
| NST_Snd : forall t t', nstep t t' -> nstep (nsnd t) (nsnd t')
| NST_SndPair : forall v1 v2,
    nvalue v1 -> nvalue v2 -> nstep (nsnd (npair v1 v2)) v2
| NST_IfTrue : forall t1 t2, nstep (nite ntru t1 t2) t1
| NST_IfFalse : forall t1 t2, nstep (nite nfls t1 t2) t2
| NST_If : forall c c' t1 t2,
    nstep c c' -> nstep (nite c t1 t2) (nite c' t1 t2).

Inductive nlookup : list (prod nat ty) -> nat -> ty -> Prop :=
| nl_here : forall x T G, nlookup ((x, T) :: G) x T
| nl_later : forall x y T U G,
    x <> y -> nlookup G x T -> nlookup ((y, U) :: G) x T.

Inductive n_has_type : list (prod nat ty) -> tm -> ty -> Prop :=
| NT_Var : forall G x T, nlookup G x T -> n_has_type G (nvar x) T
| NT_Abs : forall G x T1 T2 t,
    n_has_type ((x, T1) :: G) t T2 ->
    n_has_type G (nabs x T1 t) (NArrow T1 T2)
| NT_App : forall G t1 t2 T1 T2,
    n_has_type G t1 (NArrow T1 T2) -> n_has_type G t2 T1 ->
    n_has_type G (napp t1 t2) T2
| NT_Pair : forall G t1 t2 T1 T2,
    n_has_type G t1 T1 -> n_has_type G t2 T2 ->
    n_has_type G (npair t1 t2) (NProd T1 T2)
| NT_Fst : forall G t T1 T2,
    n_has_type G t (NProd T1 T2) -> n_has_type G (nfst t) T1
| NT_Snd : forall G t T1 T2,
    n_has_type G t (NProd T1 T2) -> n_has_type G (nsnd t) T2
| NT_Tru : forall G, n_has_type G ntru NBool
| NT_Fls : forall G, n_has_type G nfls NBool
| NT_If : forall G c t1 t2 T,
    n_has_type G c NBool -> n_has_type G t1 T -> n_has_type G t2 T ->
    n_has_type G (nite c t1 t2) T.
"""

HIGHER_ORDER = [
    ("R", "the logical relation recurses on types into Prop"),
    ("halts", "existential over reduction sequences"),
]
