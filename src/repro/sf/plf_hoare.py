"""PLF, chapters *Hoare* / *Hoare2* — Hoare logic.

Assertions are functions ``state -> Prop``, so the central
``hoare_proof`` relation and the decorated-programs machinery are
higher-order and out of scope — exactly the class the paper excludes.
In scope: the syntactic side conditions the chapters define
inductively.
"""

VOLUME = "PLF"
CHAPTER = "Hoare"

DECLARATIONS = """
Inductive aexp : Type :=
| ANum : nat -> aexp
| AId : nat -> aexp
| APlus : aexp -> aexp -> aexp
| AMinus : aexp -> aexp -> aexp
| AMult : aexp -> aexp -> aexp.

Inductive bexp : Type :=
| BTrue : bexp
| BFalse : bexp
| BEq : aexp -> aexp -> bexp
| BLe : aexp -> aexp -> bexp
| BNot : bexp -> bexp
| BAnd : bexp -> bexp -> bexp.

Inductive com : Type :=
| CSkip : com
| CAss : nat -> aexp -> com
| CSeq : com -> com -> com
| CIf : bexp -> com -> com -> com
| CWhile : bexp -> com -> com.

(* Syntactic "is a while-free program" (used by the chapter to argue
   termination side conditions). *)
Inductive while_free : com -> Prop :=
| wf_skip : while_free CSkip
| wf_ass : forall x a, while_free (CAss x a)
| wf_seq : forall c1 c2,
    while_free c1 -> while_free c2 -> while_free (CSeq c1 c2)
| wf_if : forall b c1 c2,
    while_free c1 -> while_free c2 -> while_free (CIf b c1 c2).

(* Variables assigned by a command (modifies-set, exercise). *)
Inductive assigns : com -> nat -> Prop :=
| asg_ass : forall x a, assigns (CAss x a) x
| asg_seq1 : forall c1 c2 x, assigns c1 x -> assigns (CSeq c1 c2) x
| asg_seq2 : forall c1 c2 x, assigns c2 x -> assigns (CSeq c1 c2) x
| asg_if1 : forall b c1 c2 x, assigns c1 x -> assigns (CIf b c1 c2) x
| asg_if2 : forall b c1 c2 x, assigns c2 x -> assigns (CIf b c1 c2) x
| asg_while : forall b c x, assigns c x -> assigns (CWhile b c) x.
"""

HIGHER_ORDER = [
    ("hoare_proof", "pre/postconditions are assertions state -> Prop"),
    ("dcom_correct", "decorated programs embed assertions"),
    ("valid_hoare_triple", "quantifies over states and assertions"),
]
