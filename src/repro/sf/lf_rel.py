"""LF, chapters *Rel* and *IndPrinciples* — relation-theoretic extras.

The Rel chapter's content is mostly *properties of* relations
(reflexivity, transitivity, …) stated over arbitrary ``relation X`` —
higher-order, so out of scope.  What remains in scope are the concrete
instances the chapter studies (``le``/``lt`` variants and ``clos_refl_
trans`` instantiated at ``next_nat``) and IndPrinciples' tree/shape
exercises.
"""

VOLUME = "LF"
CHAPTER = "Rel/IndPrinciples"

DECLARATIONS = """
Inductive next_nat : nat -> nat -> Prop :=
| nn : forall n, next_nat n (S n).

(* clos_refl_trans next_nat, unfolded at the instance (the general
   closure operator is higher-order). *)
Inductive le_closure : nat -> nat -> Prop :=
| lc_step : forall n m, next_nat n m -> le_closure n m
| lc_refl : forall n, le_closure n n
| lc_trans : forall n m o,
    le_closure n m -> le_closure m o -> le_closure n o.

Inductive ge : nat -> nat -> Prop :=
| ge_n : forall n, ge n n
| ge_S : forall n m, ge n m -> ge (S n) m.

(* IndPrinciples: booltree and its well-formedness shape. *)
Inductive booltree : Type :=
| bt_empty : booltree
| bt_leaf : bool -> booltree
| bt_branch : bool -> booltree -> booltree -> booltree.

Inductive btree_size : booltree -> nat -> Prop :=
| bts_empty : btree_size bt_empty 0
| bts_leaf : forall b, btree_size (bt_leaf b) 1
| bts_branch : forall b t1 t2 n1 n2,
    btree_size t1 n1 -> btree_size t2 n2 ->
    btree_size (bt_branch b t1 t2) (S (n1 + n2)).
"""

HIGHER_ORDER = [
    ("reflexive", "property of an arbitrary relation"),
    ("transitive", "property of an arbitrary relation"),
    ("antisymmetric", "property of an arbitrary relation"),
    ("partial_function", "property of an arbitrary relation"),
    ("equivalence", "conjunction of higher-order properties"),
    ("order", "conjunction of higher-order properties"),
]
