"""PLF, chapter *Sub* — STLC with subtyping.

The subtype relation (with Top, products, and contravariant arrows),
plus the language relations using it, including the subsumption typing
rule — whose premise order exercises the scheduler's
producer-vs-checker decisions.
"""

VOLUME = "PLF"
CHAPTER = "Sub"

DECLARATIONS = """
Inductive ty : Type :=
| UTop : ty
| UBool : ty
| UBase : nat -> ty
| UArrow : ty -> ty -> ty
| UProd : ty -> ty -> ty.

Inductive subtype : ty -> ty -> Prop :=
| S_Refl : forall T, subtype T T
| S_Trans : forall Sv U T,
    subtype Sv U -> subtype U T -> subtype Sv T
| S_Top : forall Sv, subtype Sv UTop
| S_Arrow : forall S1 S2 T1 T2,
    subtype T1 S1 -> subtype S2 T2 ->
    subtype (UArrow S1 S2) (UArrow T1 T2)
| S_Prod : forall S1 S2 T1 T2,
    subtype S1 T1 -> subtype S2 T2 ->
    subtype (UProd S1 S2) (UProd T1 T2).

Inductive tm : Type :=
| uvar : nat -> tm
| uapp : tm -> tm -> tm
| uabs : nat -> ty -> tm -> tm
| utru : tm
| ufls : tm
| uite : tm -> tm -> tm -> tm
| uunit_c : tm
| upair : tm -> tm -> tm
| ufst : tm -> tm
| usnd : tm -> tm.

Inductive uvalue : tm -> Prop :=
| uv_abs : forall x T t, uvalue (uabs x T t)
| uv_tru : uvalue utru
| uv_fls : uvalue ufls
| uv_pair : forall v1 v2, uvalue v1 -> uvalue v2 -> uvalue (upair v1 v2).

Inductive usubst : tm -> nat -> tm -> tm -> Prop :=
| us_var_eq : forall s x, usubst s x (uvar x) s
| us_var_neq : forall s x y, x <> y -> usubst s x (uvar y) (uvar y)
| us_app : forall s x t1 t2 t1' t2',
    usubst s x t1 t1' -> usubst s x t2 t2' ->
    usubst s x (uapp t1 t2) (uapp t1' t2')
| us_abs_eq : forall s x T t, usubst s x (uabs x T t) (uabs x T t)
| us_abs_neq : forall s x y T t t',
    x <> y -> usubst s x t t' -> usubst s x (uabs y T t) (uabs y T t')
| us_tru : forall s x, usubst s x utru utru
| us_fls : forall s x, usubst s x ufls ufls
| us_ite : forall s x c c' t1 t1' t2 t2',
    usubst s x c c' -> usubst s x t1 t1' -> usubst s x t2 t2' ->
    usubst s x (uite c t1 t2) (uite c' t1' t2')
| us_unit : forall s x, usubst s x uunit_c uunit_c
| us_pair : forall s x t1 t2 t1' t2',
    usubst s x t1 t1' -> usubst s x t2 t2' ->
    usubst s x (upair t1 t2) (upair t1' t2')
| us_fst : forall s x t t', usubst s x t t' -> usubst s x (ufst t) (ufst t')
| us_snd : forall s x t t', usubst s x t t' -> usubst s x (usnd t) (usnd t').

Inductive ustep : tm -> tm -> Prop :=
| UST_AppAbs : forall x T t v t',
    uvalue v -> usubst v x t t' -> ustep (uapp (uabs x T t) v) t'
| UST_App1 : forall t1 t1' t2,
    ustep t1 t1' -> ustep (uapp t1 t2) (uapp t1' t2)
| UST_App2 : forall v t2 t2',
    uvalue v -> ustep t2 t2' -> ustep (uapp v t2) (uapp v t2')
| UST_IfTrue : forall t1 t2, ustep (uite utru t1 t2) t1
| UST_IfFalse : forall t1 t2, ustep (uite ufls t1 t2) t2
| UST_If : forall c c' t1 t2,
    ustep c c' -> ustep (uite c t1 t2) (uite c' t1 t2)
| UST_Pair1 : forall t1 t1' t2,
    ustep t1 t1' -> ustep (upair t1 t2) (upair t1' t2)
| UST_Pair2 : forall v t2 t2',
    uvalue v -> ustep t2 t2' -> ustep (upair v t2) (upair v t2')
| UST_Fst1 : forall t t', ustep t t' -> ustep (ufst t) (ufst t')
| UST_FstPair : forall v1 v2,
    uvalue v1 -> uvalue v2 -> ustep (ufst (upair v1 v2)) v1
| UST_Snd1 : forall t t', ustep t t' -> ustep (usnd t) (usnd t')
| UST_SndPair : forall v1 v2,
    uvalue v1 -> uvalue v2 -> ustep (usnd (upair v1 v2)) v2.

Inductive ulookup : list (prod nat ty) -> nat -> ty -> Prop :=
| ul_here : forall x T G, ulookup ((x, T) :: G) x T
| ul_later : forall x y T U G,
    x <> y -> ulookup G x T -> ulookup ((y, U) :: G) x T.

Inductive u_has_type : list (prod nat ty) -> tm -> ty -> Prop :=
| UT_Var : forall G x T, ulookup G x T -> u_has_type G (uvar x) T
| UT_Abs : forall G x T1 T2 t,
    u_has_type ((x, T1) :: G) t T2 ->
    u_has_type G (uabs x T1 t) (UArrow T1 T2)
| UT_App : forall G t1 t2 T1 T2,
    u_has_type G t1 (UArrow T1 T2) -> u_has_type G t2 T1 ->
    u_has_type G (uapp t1 t2) T2
| UT_Tru : forall G, u_has_type G utru UBool
| UT_Fls : forall G, u_has_type G ufls UBool
| UT_If : forall G c t1 t2 T,
    u_has_type G c UBool -> u_has_type G t1 T -> u_has_type G t2 T ->
    u_has_type G (uite c t1 t2) T
| UT_Pair : forall G t1 t2 T1 T2,
    u_has_type G t1 T1 -> u_has_type G t2 T2 ->
    u_has_type G (upair t1 t2) (UProd T1 T2)
| UT_Fst : forall G t T1 T2,
    u_has_type G t (UProd T1 T2) -> u_has_type G (ufst t) T1
| UT_Snd : forall G t T1 T2,
    u_has_type G t (UProd T1 T2) -> u_has_type G (usnd t) T2
| UT_Sub : forall G t Sv T,
    u_has_type G t Sv -> subtype Sv T -> u_has_type G t T.
"""

HIGHER_ORDER = []
