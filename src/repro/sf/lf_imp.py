"""LF, chapter *Imp* — the IMP imperative language.

Arithmetic and boolean expressions, commands, and the three evaluation
relations (``aevalR``, ``bevalR``, ``cevalR``).  Following the paper's
single global change for Software Foundations, program states are
association lists ``list (prod nat nat)`` instead of total maps
(functions): variable lookup becomes the inductive ``lookup_st`` with a
default-0 rule, and assignment conses a binding.

``cevalR`` exercises the hard features: an existential intermediate
state in ``E_Seq``, and nontermination through ``E_WhileTrue`` (the
derived checker is necessarily partial — exactly why checkers return
``option bool``).
"""

VOLUME = "LF"
CHAPTER = "Imp"

DECLARATIONS = """
Inductive aexp : Type :=
| ANum : nat -> aexp
| AId : nat -> aexp
| APlus : aexp -> aexp -> aexp
| AMinus : aexp -> aexp -> aexp
| AMult : aexp -> aexp -> aexp.

Inductive bexp : Type :=
| BTrue : bexp
| BFalse : bexp
| BEq : aexp -> aexp -> bexp
| BLe : aexp -> aexp -> bexp
| BNot : bexp -> bexp
| BAnd : bexp -> bexp -> bexp.

Inductive com : Type :=
| CSkip : com
| CAss : nat -> aexp -> com
| CSeq : com -> com -> com
| CIf : bexp -> com -> com -> com
| CWhile : bexp -> com -> com.

(* Association-list states with total-map semantics (default 0). *)
Inductive lookup_st : list (prod nat nat) -> nat -> nat -> Prop :=
| lk_nil : forall x, lookup_st [] x 0
| lk_here : forall x v st, lookup_st ((x, v) :: st) x v
| lk_later : forall x y v w st,
    x <> y -> lookup_st st x v -> lookup_st ((y, w) :: st) x v.

Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive aevalR : list (prod nat nat) -> aexp -> nat -> Prop :=
| E_ANum : forall st n, aevalR st (ANum n) n
| E_AId : forall st x v, lookup_st st x v -> aevalR st (AId x) v
| E_APlus : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 ->
    aevalR st (APlus a1 a2) (n1 + n2)
| E_AMinus : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 ->
    aevalR st (AMinus a1 a2) (n1 - n2)
| E_AMult : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 ->
    aevalR st (AMult a1 a2) (n1 * n2).

Inductive bevalR : list (prod nat nat) -> bexp -> bool -> Prop :=
| E_BTrue : forall st, bevalR st BTrue true
| E_BFalse : forall st, bevalR st BFalse false
| E_BEqT : forall st a1 a2 n,
    aevalR st a1 n -> aevalR st a2 n -> bevalR st (BEq a1 a2) true
| E_BEqF : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 -> n1 <> n2 ->
    bevalR st (BEq a1 a2) false
| E_BLeT : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 -> le n1 n2 ->
    bevalR st (BLe a1 a2) true
| E_BLeF : forall st a1 a2 n1 n2,
    aevalR st a1 n1 -> aevalR st a2 n2 -> le (S n2) n1 ->
    bevalR st (BLe a1 a2) false
| E_BNot : forall st b v,
    bevalR st b v -> bevalR st (BNot b) (negb v)
| E_BAnd : forall st b1 b2 v1 v2,
    bevalR st b1 v1 -> bevalR st b2 v2 ->
    bevalR st (BAnd b1 b2) (andb v1 v2).

Inductive cevalR : com -> list (prod nat nat) -> list (prod nat nat) -> Prop :=
| E_Skip : forall st, cevalR CSkip st st
| E_Ass : forall st x a n,
    aevalR st a n -> cevalR (CAss x a) st ((x, n) :: st)
| E_Seq : forall c1 c2 st st1 st2,
    cevalR c1 st st1 -> cevalR c2 st1 st2 -> cevalR (CSeq c1 c2) st st2
| E_IfTrue : forall b c1 c2 st st1,
    bevalR st b true -> cevalR c1 st st1 -> cevalR (CIf b c1 c2) st st1
| E_IfFalse : forall b c1 c2 st st1,
    bevalR st b false -> cevalR c2 st st1 -> cevalR (CIf b c1 c2) st st1
| E_WhileFalse : forall b c st,
    bevalR st b false -> cevalR (CWhile b c) st st
| E_WhileTrue : forall b c st st1 st2,
    bevalR st b true -> cevalR c st st1 ->
    cevalR (CWhile b c) st1 st2 -> cevalR (CWhile b c) st st2.
"""

HIGHER_ORDER = [
    ("no_whiles_terminating", "statement quantifies over derivations"),
]
