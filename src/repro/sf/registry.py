"""The Software Foundations corpus registry (Section 6.1 / Table 1).

The paper evaluates its derivation on every inductive relation in the
first two Software Foundations volumes — Logical Foundations (LF) and
Programming Language Foundations (PLF) — reporting, per volume: the
number of relations, how many the full algorithm derives computations
for, and how many the restricted Algorithm 1 baseline handles.  Out of
scope are relations involving computations over higher-order data
(functions in negative positions, quantification over propositions);
the paper's single global change — representing maps as association
lists instead of functions — is reproduced here too.

Each chapter module contributes :class:`CorpusEntry` records; entries
carry the relation's declaration in the surface syntax (or none, for
the higher-order ones, which are listed by name for the census).  The
census (:func:`table1`) loads every chapter into a fresh context and
attempts both derivations per entry.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.context import Context
from ..core.errors import ReproError
from ..core.parser import parse_declarations
from ..stdlib import standard_context

CHAPTER_MODULES = [
    "repro.sf.lf_indprop",
    "repro.sf.lf_lists",
    "repro.sf.lf_rel",
    "repro.sf.lf_imp",
    "repro.sf.plf_equiv",
    "repro.sf.plf_hoare",
    "repro.sf.plf_smallstep",
    "repro.sf.plf_types",
    "repro.sf.plf_stlc",
    "repro.sf.plf_stlcprop",
    "repro.sf.plf_morestlc",
    "repro.sf.plf_sub",
    "repro.sf.plf_records",
    "repro.sf.plf_recordsub",
    "repro.sf.plf_references",
    "repro.sf.plf_norm",
]


@dataclass(frozen=True)
class CorpusEntry:
    """One inductive relation from the SF series."""

    name: str
    volume: str  # 'LF' | 'PLF'
    chapter: str
    higher_order: bool = False
    note: str = ""


@dataclass
class Chapter:
    """A loaded chapter: its context and its entries."""

    module: str
    volume: str
    name: str
    ctx: Context
    entries: list[CorpusEntry]


def load_chapter(module_name: str) -> Chapter:
    """Import a chapter module and build its context.

    Chapter modules expose ``VOLUME``, ``CHAPTER``, ``DECLARATIONS``
    (surface syntax), optional ``setup(ctx)`` (extra functions), and
    ``HIGHER_ORDER`` (names + notes of out-of-scope relations).
    """
    mod = importlib.import_module(module_name)
    ctx = standard_context()
    setup = getattr(mod, "setup", None)
    if setup is not None:
        setup(ctx)
    declared = parse_declarations(ctx, mod.DECLARATIONS)
    entries: list[CorpusEntry] = []
    from ..core.relations import Relation

    for d in declared:
        if isinstance(d, Relation):
            entries.append(CorpusEntry(d.name, mod.VOLUME, mod.CHAPTER))
    for name, note in getattr(mod, "HIGHER_ORDER", []):
        entries.append(
            CorpusEntry(name, mod.VOLUME, mod.CHAPTER, higher_order=True, note=note)
        )
    return Chapter(module_name, mod.VOLUME, mod.CHAPTER, ctx, entries)


def load_corpus(modules: Iterable[str] = CHAPTER_MODULES) -> list[Chapter]:
    return [load_chapter(m) for m in modules]


@dataclass
class Table1Row:
    volume: str
    relations: int = 0
    derived: int = 0
    baseline: int = 0
    out_of_scope: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)


def census_relation(ctx: Context, name: str) -> tuple[bool, bool, str]:
    """(full algorithm ok, Algorithm 1 ok, failure note)."""
    from ..derive.checker_core import algorithm1_supported
    from ..derive.instances import resolve_checker

    rel = ctx.relations.get(name)
    baseline = algorithm1_supported(rel)
    try:
        resolve_checker(ctx, name)
        return True, baseline, ""
    except ReproError as err:
        return False, baseline, str(err)


def table1(
    modules: Iterable[str] = CHAPTER_MODULES,
) -> tuple[dict[str, Table1Row], list[Chapter]]:
    """Regenerate Table 1: per volume, relation counts and how many
    each algorithm derives a checker for."""
    rows = {"LF": Table1Row("LF"), "PLF": Table1Row("PLF")}
    chapters = load_corpus(modules)
    for chapter in chapters:
        row = rows[chapter.volume]
        for entry in chapter.entries:
            row.relations += 1
            if entry.higher_order:
                row.out_of_scope += 1
                continue
            ok, baseline, note = census_relation(chapter.ctx, entry.name)
            if ok:
                row.derived += 1
            else:
                row.failures.append((f"{chapter.name}.{entry.name}", note))
            if baseline:
                row.baseline += 1
    return rows, chapters


def format_table1(rows: dict[str, Table1Row]) -> str:
    lines = [
        f"{'':6s}{'Inductive':>12s}{'Computations':>15s}{'Baseline':>12s}",
        f"{'':6s}{'Relations':>12s}{'Derived':>15s}{'(Algorithm 1)':>12s}",
    ]
    for volume in ("LF", "PLF"):
        r = rows[volume]
        lines.append(
            f"{volume:6s}{r.relations:>12d}{r.derived:>15d}{r.baseline:>12d}"
        )
    return "\n".join(lines)
