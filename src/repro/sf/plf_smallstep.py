"""PLF, chapter *Smallstep*.

The toy arithmetic language and its relations (value, single step,
multi-step, big-step), small-step IMP (``astep``/``bstep``/``cstep``
over association-list states), the concurrent-IMP extension's
``par_step``, and the small-step stack machine.
"""

VOLUME = "PLF"
CHAPTER = "Smallstep"

DECLARATIONS = """
Inductive tm : Type :=
| Ctm : nat -> tm
| Ptm : tm -> tm -> tm.

Inductive value : tm -> Prop :=
| v_const : forall n, value (Ctm n).

Inductive step : tm -> tm -> Prop :=
| ST_PlusConstConst : forall n1 n2,
    step (Ptm (Ctm n1) (Ctm n2)) (Ctm (n1 + n2))
| ST_Plus1 : forall t1 t1' t2,
    step t1 t1' -> step (Ptm t1 t2) (Ptm t1' t2)
| ST_Plus2 : forall n t2 t2',
    step t2 t2' -> step (Ptm (Ctm n) t2) (Ptm (Ctm n) t2').

Inductive multi_step : tm -> tm -> Prop :=
| multi_refl : forall t, multi_step t t
| multi_trans : forall t1 t2 t3,
    step t1 t2 -> multi_step t2 t3 -> multi_step t1 t3.

Inductive eval_big : tm -> nat -> Prop :=
| E_Const : forall n, eval_big (Ctm n) n
| E_Plus : forall t1 t2 n1 n2,
    eval_big t1 n1 -> eval_big t2 n2 ->
    eval_big (Ptm t1 t2) (n1 + n2).

Inductive normal_form_of : tm -> tm -> Prop :=
| nfo : forall t t',
    multi_step t t' -> value t' -> normal_form_of t t'.

(* ------- Small-step IMP ------- *)

Inductive aexp : Type :=
| ANum : nat -> aexp
| AId : nat -> aexp
| APlus : aexp -> aexp -> aexp
| AMinus : aexp -> aexp -> aexp
| AMult : aexp -> aexp -> aexp.

Inductive bexp : Type :=
| BTrue : bexp
| BFalse : bexp
| BEq : aexp -> aexp -> bexp
| BLe : aexp -> aexp -> bexp
| BNot : bexp -> bexp
| BAnd : bexp -> bexp -> bexp.

Inductive com : Type :=
| CSkip : com
| CAss : nat -> aexp -> com
| CSeq : com -> com -> com
| CIf : bexp -> com -> com -> com
| CWhile : bexp -> com -> com
| CPar : com -> com -> com.

Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive lookup_st : list (prod nat nat) -> nat -> nat -> Prop :=
| lk_nil : forall x, lookup_st [] x 0
| lk_here : forall x v st, lookup_st ((x, v) :: st) x v
| lk_later : forall x y v w st,
    x <> y -> lookup_st st x v -> lookup_st ((y, w) :: st) x v.

Inductive aval : aexp -> Prop :=
| av_num : forall n, aval (ANum n).

Inductive astep : list (prod nat nat) -> aexp -> aexp -> Prop :=
| AS_Id : forall st x v, lookup_st st x v -> astep st (AId x) (ANum v)
| AS_Plus : forall st n1 n2,
    astep st (APlus (ANum n1) (ANum n2)) (ANum (n1 + n2))
| AS_Plus1 : forall st a1 a1' a2,
    astep st a1 a1' -> astep st (APlus a1 a2) (APlus a1' a2)
| AS_Plus2 : forall st v1 a2 a2',
    aval v1 -> astep st a2 a2' -> astep st (APlus v1 a2) (APlus v1 a2')
| AS_Minus : forall st n1 n2,
    astep st (AMinus (ANum n1) (ANum n2)) (ANum (n1 - n2))
| AS_Minus1 : forall st a1 a1' a2,
    astep st a1 a1' -> astep st (AMinus a1 a2) (AMinus a1' a2)
| AS_Minus2 : forall st v1 a2 a2',
    aval v1 -> astep st a2 a2' -> astep st (AMinus v1 a2) (AMinus v1 a2')
| AS_Mult : forall st n1 n2,
    astep st (AMult (ANum n1) (ANum n2)) (ANum (n1 * n2))
| AS_Mult1 : forall st a1 a1' a2,
    astep st a1 a1' -> astep st (AMult a1 a2) (AMult a1' a2)
| AS_Mult2 : forall st v1 a2 a2',
    aval v1 -> astep st a2 a2' -> astep st (AMult v1 a2) (AMult v1 a2').

Inductive bstep : list (prod nat nat) -> bexp -> bexp -> Prop :=
| BS_EqTrue : forall st n,
    bstep st (BEq (ANum n) (ANum n)) BTrue
| BS_EqFalse : forall st n1 n2,
    n1 <> n2 -> bstep st (BEq (ANum n1) (ANum n2)) BFalse
| BS_Eq1 : forall st a1 a1' a2,
    astep st a1 a1' -> bstep st (BEq a1 a2) (BEq a1' a2)
| BS_Eq2 : forall st v1 a2 a2',
    aval v1 -> astep st a2 a2' -> bstep st (BEq v1 a2) (BEq v1 a2')
| BS_LeTrue : forall st n1 n2,
    le n1 n2 -> bstep st (BLe (ANum n1) (ANum n2)) BTrue
| BS_LeFalse : forall st n1 n2,
    le (S n2) n1 -> bstep st (BLe (ANum n1) (ANum n2)) BFalse
| BS_Le1 : forall st a1 a1' a2,
    astep st a1 a1' -> bstep st (BLe a1 a2) (BLe a1' a2)
| BS_Le2 : forall st v1 a2 a2',
    aval v1 -> astep st a2 a2' -> bstep st (BLe v1 a2) (BLe v1 a2')
| BS_NotTrue : forall st, bstep st (BNot BTrue) BFalse
| BS_NotFalse : forall st, bstep st (BNot BFalse) BTrue
| BS_NotStep : forall st b b',
    bstep st b b' -> bstep st (BNot b) (BNot b')
| BS_AndTrueTrue : forall st, bstep st (BAnd BTrue BTrue) BTrue
| BS_AndTrueFalse : forall st, bstep st (BAnd BTrue BFalse) BFalse
| BS_AndFalse : forall st b, bstep st (BAnd BFalse b) BFalse
| BS_AndTrueStep : forall st b b',
    bstep st b b' -> bstep st (BAnd BTrue b) (BAnd BTrue b')
| BS_AndStep : forall st b1 b1' b2,
    bstep st b1 b1' -> bstep st (BAnd b1 b2) (BAnd b1' b2).

Inductive cstep :
    com -> list (prod nat nat) -> com -> list (prod nat nat) -> Prop :=
| CS_AssStep : forall st x a a',
    astep st a a' -> cstep (CAss x a) st (CAss x a') st
| CS_Ass : forall st x n,
    cstep (CAss x (ANum n)) st CSkip ((x, n) :: st)
| CS_SeqStep : forall st c1 c1' st' c2,
    cstep c1 st c1' st' -> cstep (CSeq c1 c2) st (CSeq c1' c2) st'
| CS_SeqFinish : forall st c2, cstep (CSeq CSkip c2) st c2 st
| CS_IfStep : forall st b b' c1 c2,
    bstep st b b' -> cstep (CIf b c1 c2) st (CIf b' c1 c2) st
| CS_IfTrue : forall st c1 c2, cstep (CIf BTrue c1 c2) st c1 st
| CS_IfFalse : forall st c1 c2, cstep (CIf BFalse c1 c2) st c2 st
| CS_While : forall st b c,
    cstep (CWhile b c) st (CIf b (CSeq c (CWhile b c)) CSkip) st
| CS_Par1 : forall st c1 c1' st' c2,
    cstep c1 st c1' st' -> cstep (CPar c1 c2) st (CPar c1' c2) st'
| CS_Par2 : forall st c1 c2 c2' st',
    cstep c2 st c2' st' -> cstep (CPar c1 c2) st (CPar c1 c2') st'
| CS_ParDone : forall st, cstep (CPar CSkip CSkip) st CSkip st.

Inductive cmulti :
    com -> list (prod nat nat) -> com -> list (prod nat nat) -> Prop :=
| cm_refl : forall c st, cmulti c st c st
| cm_trans : forall c1 st1 c2 st2 c3 st3,
    cstep c1 st1 c2 st2 -> cmulti c2 st2 c3 st3 -> cmulti c1 st1 c3 st3.

(* ------- The small-step stack machine ------- *)

Inductive sinstr : Type :=
| SPush : nat -> sinstr
| SPlus : sinstr
| SMult : sinstr.

Inductive stack_step :
    list sinstr -> list nat -> list sinstr -> list nat -> Prop :=
| SS_Push : forall n prog stack,
    stack_step (SPush n :: prog) stack prog (n :: stack)
| SS_Plus : forall prog stack n m,
    stack_step (SPlus :: prog) (n :: m :: stack) prog ((m + n) :: stack)
| SS_Mult : forall prog stack n m,
    stack_step (SMult :: prog) (n :: m :: stack) prog ((m * n) :: stack).
"""

HIGHER_ORDER = [
    ("multi", "the generic closure operator is parameterized by a relation"),
    ("normal_form", "defined through negated existential quantification"),
]
