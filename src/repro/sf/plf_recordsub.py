"""PLF, chapter *RecordSub* — subtyping with records.

Combines the Records encoding with the Sub machinery: record
well-formedness, field lookup, and a subtype relation with depth,
width, and permutation rules.
"""

VOLUME = "PLF"
CHAPTER = "RecordSub"

DECLARATIONS = """
Inductive ty : Type :=
| QTop : ty
| QBase : nat -> ty
| QArrow : ty -> ty -> ty
| QRNil : ty
| QRCons : nat -> ty -> ty -> ty.

Inductive record_ty : ty -> Prop :=
| qrt_nil : record_ty QRNil
| qrt_cons : forall i T Tr, record_ty Tr -> record_ty (QRCons i T Tr).

Inductive wf_ty : ty -> Prop :=
| qwf_top : wf_ty QTop
| qwf_base : forall i, wf_ty (QBase i)
| qwf_arrow : forall T1 T2, wf_ty T1 -> wf_ty T2 -> wf_ty (QArrow T1 T2)
| qwf_rnil : wf_ty QRNil
| qwf_rcons : forall i T Tr,
    wf_ty T -> wf_ty Tr -> record_ty Tr -> wf_ty (QRCons i T Tr).

Inductive qty_lookup : nat -> ty -> ty -> Prop :=
| ql_here : forall i T Tr, qty_lookup i (QRCons i T Tr) T
| ql_later : forall i j T U Tr,
    i <> j -> qty_lookup i Tr U -> qty_lookup i (QRCons j T Tr) U.

Inductive qsubtype : ty -> ty -> Prop :=
| QS_Refl : forall T, wf_ty T -> qsubtype T T
| QS_Trans : forall Sv U T,
    qsubtype Sv U -> qsubtype U T -> qsubtype Sv T
| QS_Top : forall Sv, wf_ty Sv -> qsubtype Sv QTop
| QS_Arrow : forall S1 S2 T1 T2,
    qsubtype T1 S1 -> qsubtype S2 T2 ->
    qsubtype (QArrow S1 S2) (QArrow T1 T2)
| QS_RcdWidth : forall i T Tr,
    wf_ty (QRCons i T Tr) -> qsubtype (QRCons i T Tr) QRNil
| QS_RcdDepth : forall i Sv Sr T Tr,
    qsubtype Sv T -> qsubtype Sr Tr ->
    record_ty Sr -> record_ty Tr ->
    qsubtype (QRCons i Sv Sr) (QRCons i T Tr)
| QS_RcdPerm : forall i1 i2 T1 T2 Tr,
    wf_ty (QRCons i1 T1 (QRCons i2 T2 Tr)) -> i1 <> i2 ->
    qsubtype (QRCons i1 T1 (QRCons i2 T2 Tr))
             (QRCons i2 T2 (QRCons i1 T1 Tr)).
"""

HIGHER_ORDER = []
