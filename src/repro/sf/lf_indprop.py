"""LF, chapter *Inductively Defined Propositions* (IndProp).

The richest source of inductive relations in Logical Foundations:
evenness (two formulations), ordering relations, the exercise
relations (``total_relation``, ``empty_relation``, the three-place
``R``), subsequences, regular-expression matching, palindromes, and
the no-stutter / pigeonhole exercises.

Out of scope (higher-order): ``reflect`` quantifies over propositions;
the ``clos_refl_trans`` family and ``relation``-property definitions
are parameterized by arbitrary binary relations (functions into Prop).
"""

VOLUME = "LF"
CHAPTER = "IndProp"

DECLARATIONS = """
(* Evenness, the canonical first example. *)
Inductive ev : nat -> Prop :=
| ev_0 : ev 0
| ev_SS : forall n, ev n -> ev (S (S n)).

(* The alternative sum-based formulation (ev' in the book). *)
Inductive evp : nat -> Prop :=
| evp_0 : evp 0
| evp_2 : evp 2
| evp_sum : forall n m, evp n -> evp m -> evp (n + m).

(* Ordering. *)
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive lt : nat -> nat -> Prop :=
| lt_intro : forall n m, le (S n) m -> lt n m.

(* Exercise relations. *)
Inductive square_of : nat -> nat -> Prop :=
| sq : forall n, square_of n (n * n).

Inductive next_nat : nat -> nat -> Prop :=
| nn : forall n, next_nat n (S n).

Inductive next_ev : nat -> nat -> Prop :=
| ne_1 : forall n, ev (S n) -> next_ev n (S n)
| ne_2 : forall n, ev (S (S n)) -> next_ev n (S (S n)).

Inductive total_relation : nat -> nat -> Prop :=
| total : forall n m, total_relation n m.

Inductive empty_relation : nat -> nat -> Prop :=
| absurd : forall n, lt n n -> empty_relation n n.

(* The three-place exercise relation R (R m n o <-> m + n = o). *)
Inductive R : nat -> nat -> nat -> Prop :=
| R_c1 : R 0 0 0
| R_c2 : forall m n o, R m n o -> R (S m) n (S o)
| R_c3 : forall m n o, R m n o -> R m (S n) (S o).

(* Subsequences (note the non-linear sub_take pattern). *)
Inductive subseq : list nat -> list nat -> Prop :=
| sub_nil : forall l, subseq [] l
| sub_take : forall x l1 l2, subseq l1 l2 -> subseq (x :: l1) (x :: l2)
| sub_skip : forall x l1 l2, subseq l1 l2 -> subseq l1 (x :: l2).

(* Regular expressions over nat, and the matching relation. *)
Inductive reg_exp : Type :=
| EmptySet : reg_exp
| EmptyStr : reg_exp
| RChar : nat -> reg_exp
| RApp : reg_exp -> reg_exp -> reg_exp
| RUnion : reg_exp -> reg_exp -> reg_exp
| RStar : reg_exp -> reg_exp.

Inductive exp_match : list nat -> reg_exp -> Prop :=
| MEmpty : exp_match [] EmptyStr
| MChar : forall x, exp_match [x] (RChar x)
| MApp : forall s1 re1 s2 re2,
    exp_match s1 re1 -> exp_match s2 re2 ->
    exp_match (s1 ++ s2) (RApp re1 re2)
| MUnionL : forall s1 re1 re2,
    exp_match s1 re1 -> exp_match s1 (RUnion re1 re2)
| MUnionR : forall s2 re1 re2,
    exp_match s2 re2 -> exp_match s2 (RUnion re1 re2)
| MStar0 : forall re, exp_match [] (RStar re)
| MStarApp : forall s1 s2 re,
    exp_match s1 re -> exp_match s2 (RStar re) ->
    exp_match (s1 ++ s2) (RStar re).

(* Palindromes (exercise pal_pal). *)
Inductive pal : list nat -> Prop :=
| pal_nil : pal []
| pal_one : forall x, pal [x]
| pal_app : forall x l, pal l -> pal (x :: l ++ [x]).

(* nostutter (exercise; uses a disequality premise). *)
Inductive nostutter : list nat -> Prop :=
| ns_nil : nostutter []
| ns_one : forall x, nostutter [x]
| ns_cons : forall x y l,
    x <> y -> nostutter (y :: l) -> nostutter (x :: y :: l).

(* in_order_merge exercise: merge of two lists. *)
Inductive merge : list nat -> list nat -> list nat -> Prop :=
| merge_nil : merge [] [] []
| merge_l : forall x l1 l2 l,
    merge l1 l2 l -> merge (x :: l1) l2 (x :: l)
| merge_r : forall x l1 l2 l,
    merge l1 l2 l -> merge l1 (x :: l2) (x :: l).

(* The pigeonhole principle's repeats. *)
Inductive InNat : nat -> list nat -> Prop :=
| In_here : forall x l, InNat x (x :: l)
| In_there : forall x y l, InNat x l -> InNat x (y :: l).

Inductive repeats : list nat -> Prop :=
| rep_here : forall x l, InNat x l -> repeats (x :: l)
| rep_later : forall x l, repeats l -> repeats (x :: l).

Inductive NoDupNat : list nat -> Prop :=
| nodup_nil : NoDupNat []
| nodup_cons : forall x l,
    ~ InNat x l -> NoDupNat l -> NoDupNat (x :: l).
"""

HIGHER_ORDER = [
    ("reflect", "quantifies over an arbitrary proposition P : Prop"),
    ("clos_refl_trans", "parameterized by an arbitrary relation R : X -> X -> Prop"),
    ("clos_refl_trans_1n", "parameterized by an arbitrary relation"),
    ("appears_in_fun", "relation over functions (exercise on higher-order data)"),
]
