"""PLF, chapters *Stlc* — the simply typed lambda calculus (booleans
as the base type, as in the book; variables are de Bruijn-style nat
identifiers with association-list contexts, per the paper's map
conversion).

Includes the inductive *substitution relation* ``substi`` from the
``substi_correct`` exercise — a showcase for the derivation because
substitution is usually a fixpoint.
"""

VOLUME = "PLF"
CHAPTER = "Stlc"

DECLARATIONS = """
Inductive ty : Type :=
| STBool : ty
| STArrow : ty -> ty -> ty.

Inductive tm : Type :=
| svar : nat -> tm
| sapp : tm -> tm -> tm
| sabs : nat -> ty -> tm -> tm
| stru : tm
| sfls : tm
| site : tm -> tm -> tm -> tm.

Inductive svalue : tm -> Prop :=
| sv_abs : forall x T t, svalue (sabs x T t)
| sv_tru : svalue stru
| sv_fls : svalue sfls.

(* substi s x t t' :  [x := s] t = t'  (the exercise's relational
   definition of capture-avoiding-for-closed-s substitution). *)
Inductive substi : tm -> nat -> tm -> tm -> Prop :=
| s_var_eq : forall s x, substi s x (svar x) s
| s_var_neq : forall s x y, x <> y -> substi s x (svar y) (svar y)
| s_app : forall s x t1 t2 t1' t2',
    substi s x t1 t1' -> substi s x t2 t2' ->
    substi s x (sapp t1 t2) (sapp t1' t2')
| s_abs_eq : forall s x T t, substi s x (sabs x T t) (sabs x T t)
| s_abs_neq : forall s x y T t t',
    x <> y -> substi s x t t' -> substi s x (sabs y T t) (sabs y T t')
| s_tru : forall s x, substi s x stru stru
| s_fls : forall s x, substi s x sfls sfls
| s_ite : forall s x c c' t1 t1' t2 t2',
    substi s x c c' -> substi s x t1 t1' -> substi s x t2 t2' ->
    substi s x (site c t1 t2) (site c' t1' t2').

Inductive sstep : tm -> tm -> Prop :=
| ST_AppAbs : forall x T t v t',
    svalue v -> substi v x t t' -> sstep (sapp (sabs x T t) v) t'
| ST_App1 : forall t1 t1' t2,
    sstep t1 t1' -> sstep (sapp t1 t2) (sapp t1' t2)
| ST_App2 : forall v t2 t2',
    svalue v -> sstep t2 t2' -> sstep (sapp v t2) (sapp v t2')
| ST_IfTrue : forall t1 t2, sstep (site stru t1 t2) t1
| ST_IfFalse : forall t1 t2, sstep (site sfls t1 t2) t2
| ST_If : forall c c' t1 t2,
    sstep c c' -> sstep (site c t1 t2) (site c' t1 t2).

Inductive smulti : tm -> tm -> Prop :=
| smulti_refl : forall t, smulti t t
| smulti_trans : forall t1 t2 t3,
    sstep t1 t2 -> smulti t2 t3 -> smulti t1 t3.

(* Association-list typing contexts. *)
Inductive ctx_lookup : list (prod nat ty) -> nat -> ty -> Prop :=
| cl_here : forall x T G, ctx_lookup ((x, T) :: G) x T
| cl_later : forall x y T U G,
    x <> y -> ctx_lookup G x T -> ctx_lookup ((y, U) :: G) x T.

Inductive s_has_type : list (prod nat ty) -> tm -> ty -> Prop :=
| ST_Var : forall G x T, ctx_lookup G x T -> s_has_type G (svar x) T
| ST_Abs : forall G x T11 T12 t,
    s_has_type ((x, T11) :: G) t T12 ->
    s_has_type G (sabs x T11 t) (STArrow T11 T12)
| ST_App : forall G t1 t2 T11 T12,
    s_has_type G t1 (STArrow T11 T12) -> s_has_type G t2 T11 ->
    s_has_type G (sapp t1 t2) T12
| ST_Tru : forall G, s_has_type G stru STBool
| ST_Fls : forall G, s_has_type G sfls STBool
| ST_If : forall G c t1 t2 T,
    s_has_type G c STBool -> s_has_type G t1 T -> s_has_type G t2 T ->
    s_has_type G (site c t1 t2) T.
"""

HIGHER_ORDER = []
