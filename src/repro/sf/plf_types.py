"""PLF, chapter *Types* — the typed arithmetic/boolean language.

Terms mixing booleans and numbers, the value predicates, small-step
reduction, and the first typing relation of the volume.
"""

VOLUME = "PLF"
CHAPTER = "Types"

DECLARATIONS = """
Inductive tm : Type :=
| ttru : tm
| tfls : tm
| tite : tm -> tm -> tm -> tm
| tzro : tm
| tscc : tm -> tm
| tprd : tm -> tm
| tiszro : tm -> tm.

Inductive bvalue : tm -> Prop :=
| bv_tru : bvalue ttru
| bv_fls : bvalue tfls.

Inductive nvalue : tm -> Prop :=
| nv_zro : nvalue tzro
| nv_scc : forall t, nvalue t -> nvalue (tscc t).

Inductive tvalue : tm -> Prop :=
| tv_b : forall t, bvalue t -> tvalue t
| tv_n : forall t, nvalue t -> tvalue t.

Inductive tstep : tm -> tm -> Prop :=
| ST_IfTrue : forall t1 t2, tstep (tite ttru t1 t2) t1
| ST_IfFalse : forall t1 t2, tstep (tite tfls t1 t2) t2
| ST_If : forall c c' t1 t2,
    tstep c c' -> tstep (tite c t1 t2) (tite c' t1 t2)
| ST_Succ : forall t t', tstep t t' -> tstep (tscc t) (tscc t')
| ST_PredZero : tstep (tprd tzro) tzro
| ST_PredSucc : forall t, nvalue t -> tstep (tprd (tscc t)) t
| ST_Pred : forall t t', tstep t t' -> tstep (tprd t) (tprd t')
| ST_IszeroZero : tstep (tiszro tzro) ttru
| ST_IszeroSucc : forall t, nvalue t -> tstep (tiszro (tscc t)) tfls
| ST_Iszero : forall t t', tstep t t' -> tstep (tiszro t) (tiszro t').

Inductive tyta : Type :=
| TBool : tyta
| TNat : tyta.

Inductive ta_has_type : tm -> tyta -> Prop :=
| T_Tru : ta_has_type ttru TBool
| T_Fls : ta_has_type tfls TBool
| T_If : forall c t1 t2 T,
    ta_has_type c TBool -> ta_has_type t1 T -> ta_has_type t2 T ->
    ta_has_type (tite c t1 t2) T
| T_Zro : ta_has_type tzro TNat
| T_Scc : forall t, ta_has_type t TNat -> ta_has_type (tscc t) TNat
| T_Prd : forall t, ta_has_type t TNat -> ta_has_type (tprd t) TNat
| T_Iszro : forall t,
    ta_has_type t TNat -> ta_has_type (tiszro t) TBool.

(* The multi-step relation, instantiated at tstep. *)
Inductive tmulti : tm -> tm -> Prop :=
| tmulti_refl : forall t, tmulti t t
| tmulti_trans : forall t1 t2 t3,
    tstep t1 t2 -> tmulti t2 t3 -> tmulti t1 t3.
"""

HIGHER_ORDER = [
    ("stuck", "conjunction of normal_form (negated existential) and ~value"),
]
