"""PLF, chapter *StlcProp* — metatheory auxiliaries for the STLC.

``appears_free_in`` is the chapter's central inductive relation (and
first-order, unlike ``closed``/``stuck`` which negate existentials).
The context-invariance exercise's relations are included too.
"""

VOLUME = "PLF"
CHAPTER = "StlcProp"

DECLARATIONS = """
Inductive ty : Type :=
| STBool : ty
| STArrow : ty -> ty -> ty.

Inductive tm : Type :=
| svar : nat -> tm
| sapp : tm -> tm -> tm
| sabs : nat -> ty -> tm -> tm
| stru : tm
| sfls : tm
| site : tm -> tm -> tm -> tm.

Inductive appears_free_in : nat -> tm -> Prop :=
| afi_var : forall x, appears_free_in x (svar x)
| afi_app1 : forall x t1 t2,
    appears_free_in x t1 -> appears_free_in x (sapp t1 t2)
| afi_app2 : forall x t1 t2,
    appears_free_in x t2 -> appears_free_in x (sapp t1 t2)
| afi_abs : forall x y T t,
    x <> y -> appears_free_in x t -> appears_free_in x (sabs y T t)
| afi_if1 : forall x c t1 t2,
    appears_free_in x c -> appears_free_in x (site c t1 t2)
| afi_if2 : forall x c t1 t2,
    appears_free_in x t1 -> appears_free_in x (site c t1 t2)
| afi_if3 : forall x c t1 t2,
    appears_free_in x t2 -> appears_free_in x (site c t1 t2).

(* Bound occurrence (dual exercise). *)
Inductive bound_in : nat -> tm -> Prop :=
| bi_abs_here : forall x T t, bound_in x (sabs x T t)
| bi_abs_under : forall x y T t, bound_in x t -> bound_in x (sabs y T t)
| bi_app1 : forall x t1 t2, bound_in x t1 -> bound_in x (sapp t1 t2)
| bi_app2 : forall x t1 t2, bound_in x t2 -> bound_in x (sapp t1 t2)
| bi_if1 : forall x c t1 t2, bound_in x c -> bound_in x (site c t1 t2)
| bi_if2 : forall x c t1 t2, bound_in x t1 -> bound_in x (site c t1 t2)
| bi_if3 : forall x c t1 t2, bound_in x t2 -> bound_in x (site c t1 t2).
"""

HIGHER_ORDER = [
    ("closed", "~ exists x, appears_free_in x t (negated existential)"),
    ("stuck", "normal_form (negated existential) and ~ value"),
]
