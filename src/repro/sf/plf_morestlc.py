"""PLF, chapter *MoreStlc* — the extended STLC (STLCExtended).

Numbers, sums, products, unit, let, and lists, with the full
substitution relation, value predicate, small-step semantics, and the
~30-constructor typing relation.  The single largest stress test for
the derivation algorithm in the corpus.
"""

VOLUME = "PLF"
CHAPTER = "MoreStlc"

DECLARATIONS = """
Inductive ty : Type :=
| TyArrow : ty -> ty -> ty
| TyNat : ty
| TySum : ty -> ty -> ty
| TyList : ty -> ty
| TyUnit : ty
| TyProd : ty -> ty -> ty.

Inductive tm : Type :=
| xvar : nat -> tm
| xapp : tm -> tm -> tm
| xabs : nat -> ty -> tm -> tm
| xconst : nat -> tm
| xsucc : tm -> tm
| xpred : tm -> tm
| xmult : tm -> tm -> tm
| xif0 : tm -> tm -> tm -> tm
| xinl : ty -> tm -> tm
| xinr : ty -> tm -> tm
| xcase : tm -> nat -> tm -> nat -> tm -> tm
| xnil : ty -> tm
| xcons : tm -> tm -> tm
| xlcase : tm -> tm -> nat -> nat -> tm -> tm
| xunit : tm
| xpair : tm -> tm -> tm
| xfst : tm -> tm
| xsnd : tm -> tm
| xlet : nat -> tm -> tm -> tm.

Inductive xvalue : tm -> Prop :=
| xv_abs : forall x T t, xvalue (xabs x T t)
| xv_const : forall n, xvalue (xconst n)
| xv_inl : forall T v, xvalue v -> xvalue (xinl T v)
| xv_inr : forall T v, xvalue v -> xvalue (xinr T v)
| xv_nil : forall T, xvalue (xnil T)
| xv_cons : forall v1 v2, xvalue v1 -> xvalue v2 -> xvalue (xcons v1 v2)
| xv_unit : xvalue xunit
| xv_pair : forall v1 v2, xvalue v1 -> xvalue v2 -> xvalue (xpair v1 v2).

(* Relational substitution  xsubst s x t t' :  [x := s] t = t'. *)
Inductive xsubst : tm -> nat -> tm -> tm -> Prop :=
| xs_var_eq : forall s x, xsubst s x (xvar x) s
| xs_var_neq : forall s x y, x <> y -> xsubst s x (xvar y) (xvar y)
| xs_app : forall s x t1 t2 t1' t2',
    xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xapp t1 t2) (xapp t1' t2')
| xs_abs_eq : forall s x T t, xsubst s x (xabs x T t) (xabs x T t)
| xs_abs_neq : forall s x y T t t',
    x <> y -> xsubst s x t t' -> xsubst s x (xabs y T t) (xabs y T t')
| xs_const : forall s x n, xsubst s x (xconst n) (xconst n)
| xs_succ : forall s x t t',
    xsubst s x t t' -> xsubst s x (xsucc t) (xsucc t')
| xs_pred : forall s x t t',
    xsubst s x t t' -> xsubst s x (xpred t) (xpred t')
| xs_mult : forall s x t1 t2 t1' t2',
    xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xmult t1 t2) (xmult t1' t2')
| xs_if0 : forall s x c c' t1 t1' t2 t2',
    xsubst s x c c' -> xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xif0 c t1 t2) (xif0 c' t1' t2')
| xs_inl : forall s x T t t',
    xsubst s x t t' -> xsubst s x (xinl T t) (xinl T t')
| xs_inr : forall s x T t t',
    xsubst s x t t' -> xsubst s x (xinr T t) (xinr T t')
| xs_case_eq1 : forall s x t0 t0' y t1 t2,
    x <> y -> xsubst s x t0 t0' ->
    xsubst s x (xcase t0 x t1 y t2) (xcase t0' x t1 y t2)
| xs_case : forall s x t0 t0' y1 t1 t1' y2 t2 t2',
    x <> y1 -> x <> y2 ->
    xsubst s x t0 t0' -> xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xcase t0 y1 t1 y2 t2) (xcase t0' y1 t1' y2 t2')
| xs_nil : forall s x T, xsubst s x (xnil T) (xnil T)
| xs_cons : forall s x t1 t2 t1' t2',
    xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xcons t1 t2) (xcons t1' t2')
| xs_unit : forall s x, xsubst s x xunit xunit
| xs_pair : forall s x t1 t2 t1' t2',
    xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xpair t1 t2) (xpair t1' t2')
| xs_fst : forall s x t t',
    xsubst s x t t' -> xsubst s x (xfst t) (xfst t')
| xs_snd : forall s x t t',
    xsubst s x t t' -> xsubst s x (xsnd t) (xsnd t')
| xs_let_eq : forall s x t1 t1' t2,
    xsubst s x t1 t1' -> xsubst s x (xlet x t1 t2) (xlet x t1' t2)
| xs_let_neq : forall s x y t1 t1' t2 t2',
    x <> y -> xsubst s x t1 t1' -> xsubst s x t2 t2' ->
    xsubst s x (xlet y t1 t2) (xlet y t1' t2').

Inductive xstep : tm -> tm -> Prop :=
| XST_AppAbs : forall x T t v t',
    xvalue v -> xsubst v x t t' -> xstep (xapp (xabs x T t) v) t'
| XST_App1 : forall t1 t1' t2,
    xstep t1 t1' -> xstep (xapp t1 t2) (xapp t1' t2)
| XST_App2 : forall v t2 t2',
    xvalue v -> xstep t2 t2' -> xstep (xapp v t2) (xapp v t2')
| XST_Succ : forall t t', xstep t t' -> xstep (xsucc t) (xsucc t')
| XST_SuccNat : forall n, xstep (xsucc (xconst n)) (xconst (S n))
| XST_Pred : forall t t', xstep t t' -> xstep (xpred t) (xpred t')
| XST_PredNat : forall n, xstep (xpred (xconst n)) (xconst (pred n))
| XST_Mult1 : forall t1 t1' t2,
    xstep t1 t1' -> xstep (xmult t1 t2) (xmult t1' t2)
| XST_Mult2 : forall v t2 t2',
    xvalue v -> xstep t2 t2' -> xstep (xmult v t2) (xmult v t2')
| XST_MultNats : forall n1 n2,
    xstep (xmult (xconst n1) (xconst n2)) (xconst (n1 * n2))
| XST_If0 : forall c c' t1 t2,
    xstep c c' -> xstep (xif0 c t1 t2) (xif0 c' t1 t2)
| XST_If0Zero : forall t1 t2, xstep (xif0 (xconst 0) t1 t2) t1
| XST_If0Nonzero : forall n t1 t2,
    xstep (xif0 (xconst (S n)) t1 t2) t2
| XST_Inl : forall T t t', xstep t t' -> xstep (xinl T t) (xinl T t')
| XST_Inr : forall T t t', xstep t t' -> xstep (xinr T t) (xinr T t')
| XST_Case : forall t0 t0' y1 t1 y2 t2,
    xstep t0 t0' -> xstep (xcase t0 y1 t1 y2 t2) (xcase t0' y1 t1 y2 t2)
| XST_CaseInl : forall T v y1 t1 y2 t2 t1',
    xvalue v -> xsubst v y1 t1 t1' ->
    xstep (xcase (xinl T v) y1 t1 y2 t2) t1'
| XST_CaseInr : forall T v y1 t1 y2 t2 t2',
    xvalue v -> xsubst v y2 t2 t2' ->
    xstep (xcase (xinr T v) y1 t1 y2 t2) t2'
| XST_Cons1 : forall t1 t1' t2,
    xstep t1 t1' -> xstep (xcons t1 t2) (xcons t1' t2)
| XST_Cons2 : forall v t2 t2',
    xvalue v -> xstep t2 t2' -> xstep (xcons v t2) (xcons v t2')
| XST_Lcase : forall t0 t0' t1 y1 y2 t2,
    xstep t0 t0' -> xstep (xlcase t0 t1 y1 y2 t2) (xlcase t0' t1 y1 y2 t2)
| XST_LcaseNil : forall T t1 y1 y2 t2,
    xstep (xlcase (xnil T) t1 y1 y2 t2) t1
| XST_LcaseCons : forall vh vt t1 y1 y2 t2 t2' t2'',
    xvalue vh -> xvalue vt ->
    xsubst vh y1 t2 t2' -> xsubst vt y2 t2' t2'' ->
    xstep (xlcase (xcons vh vt) t1 y1 y2 t2) t2''
| XST_Pair1 : forall t1 t1' t2,
    xstep t1 t1' -> xstep (xpair t1 t2) (xpair t1' t2)
| XST_Pair2 : forall v t2 t2',
    xvalue v -> xstep t2 t2' -> xstep (xpair v t2) (xpair v t2')
| XST_Fst1 : forall t t', xstep t t' -> xstep (xfst t) (xfst t')
| XST_FstPair : forall v1 v2,
    xvalue v1 -> xvalue v2 -> xstep (xfst (xpair v1 v2)) v1
| XST_Snd1 : forall t t', xstep t t' -> xstep (xsnd t) (xsnd t')
| XST_SndPair : forall v1 v2,
    xvalue v1 -> xvalue v2 -> xstep (xsnd (xpair v1 v2)) v2
| XST_Let1 : forall x t1 t1' t2,
    xstep t1 t1' -> xstep (xlet x t1 t2) (xlet x t1' t2)
| XST_LetValue : forall x v t2 t2',
    xvalue v -> xsubst v x t2 t2' -> xstep (xlet x v t2) t2'.

Inductive xlookup : list (prod nat ty) -> nat -> ty -> Prop :=
| xl_here : forall x T G, xlookup ((x, T) :: G) x T
| xl_later : forall x y T U G,
    x <> y -> xlookup G x T -> xlookup ((y, U) :: G) x T.

Inductive x_has_type : list (prod nat ty) -> tm -> ty -> Prop :=
| XT_Var : forall G x T, xlookup G x T -> x_has_type G (xvar x) T
| XT_Abs : forall G x T1 T2 t,
    x_has_type ((x, T1) :: G) t T2 ->
    x_has_type G (xabs x T1 t) (TyArrow T1 T2)
| XT_App : forall G t1 t2 T1 T2,
    x_has_type G t1 (TyArrow T1 T2) -> x_has_type G t2 T1 ->
    x_has_type G (xapp t1 t2) T2
| XT_Const : forall G n, x_has_type G (xconst n) TyNat
| XT_Succ : forall G t,
    x_has_type G t TyNat -> x_has_type G (xsucc t) TyNat
| XT_Pred : forall G t,
    x_has_type G t TyNat -> x_has_type G (xpred t) TyNat
| XT_Mult : forall G t1 t2,
    x_has_type G t1 TyNat -> x_has_type G t2 TyNat ->
    x_has_type G (xmult t1 t2) TyNat
| XT_If0 : forall G c t1 t2 T,
    x_has_type G c TyNat -> x_has_type G t1 T -> x_has_type G t2 T ->
    x_has_type G (xif0 c t1 t2) T
| XT_Inl : forall G t T1 T2,
    x_has_type G t T1 -> x_has_type G (xinl T2 t) (TySum T1 T2)
| XT_Inr : forall G t T1 T2,
    x_has_type G t T2 -> x_has_type G (xinr T1 t) (TySum T1 T2)
| XT_Case : forall G t0 T1 T2 y1 t1 y2 t2 T,
    x_has_type G t0 (TySum T1 T2) ->
    x_has_type ((y1, T1) :: G) t1 T ->
    x_has_type ((y2, T2) :: G) t2 T ->
    x_has_type G (xcase t0 y1 t1 y2 t2) T
| XT_Nil : forall G T, x_has_type G (xnil T) (TyList T)
| XT_Cons : forall G t1 t2 T,
    x_has_type G t1 T -> x_has_type G t2 (TyList T) ->
    x_has_type G (xcons t1 t2) (TyList T)
| XT_Lcase : forall G t0 T t1 y1 y2 t2 U,
    x_has_type G t0 (TyList T) ->
    x_has_type G t1 U ->
    x_has_type ((y1, T) :: (y2, TyList T) :: G) t2 U ->
    x_has_type G (xlcase t0 t1 y1 y2 t2) U
| XT_Unit : forall G, x_has_type G xunit TyUnit
| XT_Pair : forall G t1 t2 T1 T2,
    x_has_type G t1 T1 -> x_has_type G t2 T2 ->
    x_has_type G (xpair t1 t2) (TyProd T1 T2)
| XT_Fst : forall G t T1 T2,
    x_has_type G t (TyProd T1 T2) -> x_has_type G (xfst t) T1
| XT_Snd : forall G t T1 T2,
    x_has_type G t (TyProd T1 T2) -> x_has_type G (xsnd t) T2
| XT_Let : forall G x t1 T1 t2 T2,
    x_has_type G t1 T1 -> x_has_type ((x, T1) :: G) t2 T2 ->
    x_has_type G (xlet x t1 t2) T2.
"""

HIGHER_ORDER = []
