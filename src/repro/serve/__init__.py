"""``repro.serve``: derivation-as-a-service.

The serving layer over the session-scoped execution core: an
:class:`Engine` holds a preloaded context and a pool of worker
threads, each with its own :class:`~repro.core.session.Session`
(per-worker stats, budgets, and memo shards), and answers
check/enumerate/generate queries with structured three-valued results
— definite answers, *structured give-ups* (fuel, deadline, op budget),
or errors.  ``python -m repro.serve`` is the command-line front door::

    python -m repro.serve --demo
    python -m repro.serve queries.jsonl --decls corpus.v --workers 4

Programmatic use::

    from repro.serve import CheckQuery, Engine

    with Engine(ctx, workers=4, max_ops=100_000) as eng:
        result = eng.run(CheckQuery("typing", args, fuel=32))
        if result.ok:
            ...
        elif result.give_up:
            print("gave up:", result.give_up.reason)

High availability: the engine queues through an
:class:`~repro.serve.admission.AdmissionQueue` (``queue_max=`` /
``admission=`` pick bound and policy, deadlined queries expire in
queue), degrades under load via an
:class:`~repro.serve.admission.OverloadController` ladder, fast-fails
budget-burning shapes with a
:class:`~repro.serve.admission.ShapeBreaker`, and restarts crashed
workers through a :class:`~repro.serve.supervisor.Supervisor`
(``supervise=True`` by default).  Refused queries resolve as
``status="shed"`` — structured degradation, never an error or a
stranded future.

For throughput-parallel *campaigns* (many tests of one property) see
:func:`repro.resilience.parallel_quick_check`; the engine is for
*query* traffic — many independent questions against one corpus.
"""

from .admission import (
    ADMISSION_POLICIES,
    AdmissionQueue,
    OverloadController,
    ShapeBreaker,
    Ticket,
)
from .engine import Engine
from .queries import CheckQuery, EnumQuery, GenQuery, GiveUp, QueryResult
from .supervisor import Supervisor

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionQueue",
    "CheckQuery",
    "Engine",
    "EnumQuery",
    "GenQuery",
    "GiveUp",
    "OverloadController",
    "QueryResult",
    "ShapeBreaker",
    "Supervisor",
    "Ticket",
]
