"""``repro.serve``: derivation-as-a-service.

The serving layer over the session-scoped execution core: an
:class:`Engine` holds a preloaded context and a pool of worker
threads, each with its own :class:`~repro.core.session.Session`
(per-worker stats, budgets, and memo shards), and answers
check/enumerate/generate queries with structured three-valued results
— definite answers, *structured give-ups* (fuel, deadline, op budget),
or errors.  ``python -m repro.serve`` is the command-line front door::

    python -m repro.serve --demo
    python -m repro.serve queries.jsonl --decls corpus.v --workers 4

Programmatic use::

    from repro.serve import CheckQuery, Engine

    with Engine(ctx, workers=4, max_ops=100_000) as eng:
        result = eng.run(CheckQuery("typing", args, fuel=32))
        if result.ok:
            ...
        elif result.give_up:
            print("gave up:", result.give_up.reason)

For throughput-parallel *campaigns* (many tests of one property) see
:func:`repro.resilience.parallel_quick_check`; the engine is for
*query* traffic — many independent questions against one corpus.
"""

from .engine import Engine
from .queries import CheckQuery, EnumQuery, GenQuery, GiveUp, QueryResult

__all__ = [
    "CheckQuery",
    "Engine",
    "EnumQuery",
    "GenQuery",
    "GiveUp",
    "QueryResult",
]
