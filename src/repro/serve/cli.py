"""Command-line front end: ``python -m repro.serve``.

Serves a JSONL query file against a preloaded corpus::

    python -m repro.serve queries.jsonl --decls corpus.v --workers 4
    python -m repro.serve queries.jsonl --decls corpus.v --max-ops 50000
    python -m repro.serve --demo

One query per line::

    {"kind": "check", "rel": "le", "args": ["2", "5"], "fuel": 32}
    {"kind": "enum", "rel": "le", "mode": "oi", "ins": ["4"], "max_values": 8}
    {"kind": "gen", "rel": "le", "mode": "io", "ins": ["3"], "seed": 7}

Argument terms use the surface syntax (``parse_term_text``): numerals,
constructors, lists.  Results stream back as JSONL on stdout (or
``--out``), one :meth:`~repro.serve.queries.QueryResult.to_dict` per
query, followed by an engine-stats line.  ``--demo`` loads a small
built-in nat corpus and a canned workload.

Telemetry flags: ``--telemetry`` records per-query latency/trace
telemetry (``--sample-every`` / ``--slow-ms`` set the tracing policy);
``--stats`` renders a top-style latency table to stderr at the end
(``--stats-interval SEC`` re-renders it live while serving); and
``--export DIR`` (implies ``--telemetry``) writes ``telemetry.jsonl``
(re-renderable with ``python -m repro.observe``), ``metrics.prom``
(Prometheus text exposition), and ``stats.txt`` into *DIR*.

High-availability flags: ``--queue-max N`` bounds the admission queue
(and enables the overload degradation ladder); ``--admission
{block,reject,shed_oldest}`` picks the full-queue policy;
``--drain-timeout SEC`` bounds the shutdown drain — whatever is still
queued after SEC seconds is shed (``status="shed"``), never stranded.

Exit codes: 0 = every query answered definitely, 1 = at least one
gave up or was shed (fuel/budget/admission), 2 = errors (unknown
relation, parse failure, usage).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from pathlib import Path

from ..core import parse_declarations, parse_term_text, term_to_value
from ..core.errors import ReproError
from ..stdlib import standard_context
from .engine import Engine
from .queries import CheckQuery, EnumQuery, GenQuery

DEMO_DECLS = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive add : nat -> nat -> nat -> Prop :=
| add_O : forall m, add O m m
| add_S : forall n m p, add n m p -> add (S n) m (S p).
"""

DEMO_QUERIES = [
    {"kind": "check", "rel": "le", "args": ["2", "5"]},
    {"kind": "check", "rel": "le", "args": ["5", "2"]},
    {"kind": "check", "rel": "add", "args": ["2", "3", "5"]},
    {"kind": "enum", "rel": "add", "mode": "ooi", "ins": ["4"], "fuel": 8},
    {"kind": "enum", "rel": "le", "mode": "oi", "ins": ["3"], "fuel": 6},
    {"kind": "gen", "rel": "add", "mode": "ooi", "ins": ["6"], "seed": 11},
]


def _terms(ctx, texts) -> tuple:
    return tuple(
        term_to_value(parse_term_text(ctx, str(t))) for t in texts
    )


def parse_query(ctx, obj: dict):
    """One JSONL object -> a query (raises ReproError/KeyError on bad
    shape; the caller maps those to exit code 2)."""
    kind = obj.get("kind")
    rel = obj["rel"]
    if kind == "check":
        return CheckQuery(
            rel,
            _terms(ctx, obj["args"]),
            fuel=int(obj.get("fuel", 64)),
            max_ops=obj.get("max_ops"),
            deadline_seconds=obj.get("deadline_seconds"),
        )
    if kind == "enum":
        return EnumQuery(
            rel,
            obj["mode"],
            _terms(ctx, obj.get("ins", [])),
            fuel=int(obj.get("fuel", 8)),
            max_values=obj.get("max_values", 32),
            max_ops=obj.get("max_ops"),
            deadline_seconds=obj.get("deadline_seconds"),
        )
    if kind == "gen":
        return GenQuery(
            rel,
            obj["mode"],
            _terms(ctx, obj.get("ins", [])),
            fuel=int(obj.get("fuel", 8)),
            seed=obj.get("seed"),
            max_ops=obj.get("max_ops"),
            deadline_seconds=obj.get("deadline_seconds"),
        )
    raise ReproError(f"unknown query kind {kind!r} (check/enum/gen)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve check/enum/gen queries against a corpus.",
    )
    p.add_argument("queries", nargs="?", help="JSONL query file")
    p.add_argument("--decls", help="surface-syntax declarations to preload")
    p.add_argument(
        "--demo", action="store_true",
        help="built-in nat corpus + canned workload",
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--fuel", type=int, default=64, help="default check fuel")
    p.add_argument("--max-ops", type=int, default=None)
    p.add_argument("--deadline-seconds", type=float, default=None)
    p.add_argument(
        "--queue-max", type=int, default=None, metavar="N",
        help="bound the admission queue at N queries (default unbounded); "
        "enables the overload degradation ladder",
    )
    p.add_argument(
        "--admission", choices=["block", "reject", "shed_oldest"],
        default="block",
        help="full-queue policy: block the submitter, reject the incoming "
        "query (status=shed), or evict the oldest queued one",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SEC",
        help="at shutdown, serve the remaining queue for up to SEC seconds, "
        "then shed the rest (default: drain fully)",
    )
    p.add_argument(
        "--memoize", action="store_true",
        help="per-worker memo shards",
    )
    p.add_argument("--out", help="write result JSONL here instead of stdout")
    p.add_argument(
        "--telemetry", action="store_true",
        help="record per-query latency and trace telemetry",
    )
    p.add_argument(
        "--sample-every", type=int, default=None, metavar="N",
        help="trace every Nth query per (kind, relation); 0 disables "
        "sampling (implies --telemetry)",
    )
    p.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="arm span tracing for query shapes slower than MS "
        "milliseconds (implies --telemetry)",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="render the telemetry table to stderr when done "
        "(implies --telemetry)",
    )
    p.add_argument(
        "--stats-interval", type=float, default=None, metavar="SEC",
        help="also re-render --stats every SEC seconds while serving",
    )
    p.add_argument(
        "--export", metavar="DIR",
        help="write telemetry.jsonl + metrics.prom + stats.txt into DIR "
        "(implies --telemetry)",
    )
    return p


def _make_telemetry(args):
    """The Telemetry the flags imply, or None when telemetry is off."""
    wanted = (
        args.telemetry or args.stats or args.export is not None
        or args.sample_every is not None or args.slow_ms is not None
    )
    if not wanted:
        return None
    from ..observe.telemetry import DEFAULT_SAMPLE_EVERY, Telemetry

    sample = (
        DEFAULT_SAMPLE_EVERY if args.sample_every is None
        else args.sample_every
    )
    slow = None if args.slow_ms is None else args.slow_ms / 1000.0
    return Telemetry(sample_every=sample, slow_seconds=slow)


def _export_telemetry(telemetry, directory) -> None:
    from ..observe.export import write_prometheus, write_telemetry_jsonl

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_telemetry_jsonl(telemetry, directory / "telemetry.jsonl")
    write_prometheus(telemetry, directory / "metrics.prom")
    (directory / "stats.txt").write_text(
        telemetry.render() + "\n", encoding="utf-8"
    )


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.demo and not args.queries:
        print("error: need a queries file or --demo", file=sys.stderr)
        return 2

    ctx = standard_context()
    try:
        if args.decls:
            parse_declarations(ctx, Path(args.decls).read_text())
        elif args.demo:
            parse_declarations(ctx, DEMO_DECLS)
        if args.demo:
            raw = list(DEMO_QUERIES)
        else:
            raw = [
                json.loads(line)
                for line in Path(args.queries).read_text().splitlines()
                if line.strip()
            ]
        queries = []
        for obj in raw:
            if "fuel" not in obj and obj.get("kind") == "check":
                obj = dict(obj, fuel=args.fuel)
            queries.append(parse_query(ctx, obj))
    except (ReproError, OSError, KeyError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    telemetry = _make_telemetry(args)
    out = open(args.out, "w") if args.out else sys.stdout
    gave_up = errors = 0
    ticker = stop_ticker = None
    if telemetry is not None and args.stats_interval:
        stop_ticker = threading.Event()

        def _tick():
            while not stop_ticker.wait(args.stats_interval):
                print(telemetry.render(), file=sys.stderr)

        ticker = threading.Thread(
            target=_tick, name="serve-stats", daemon=True
        )
        ticker.start()
    try:
        engine = Engine(
            ctx,
            workers=args.workers,
            max_ops=args.max_ops,
            deadline_seconds=args.deadline_seconds,
            memoize=args.memoize,
            telemetry=telemetry,
            queue_max=args.queue_max,
            admission=args.admission,
        )
        try:
            engine.start()
            engine.prepare(queries)
            for result in engine.run_batch(queries):
                if result.status in ("gave_up", "shed"):
                    gave_up += 1
                elif result.status == "error":
                    errors += 1
                print(json.dumps(result.to_dict()), file=out)
            stats = engine.stats()
        finally:
            engine.close(drain_timeout=args.drain_timeout)
        print(json.dumps({"kind": "engine_stats", **stats}), file=out)
    finally:
        if stop_ticker is not None:
            stop_ticker.set()
            ticker.join(timeout=1.0)
        if out is not sys.stdout:
            out.close()
    if telemetry is not None:
        if args.export:
            try:
                _export_telemetry(telemetry, args.export)
            except OSError as e:
                print(f"error: export failed: {e}", file=sys.stderr)
                return 2
        if args.stats:
            print(telemetry.render(), file=sys.stderr)
    if errors:
        return 2
    return 1 if gave_up else 0
