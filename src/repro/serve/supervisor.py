"""Worker supervision: crashed workers restart instead of dying silently.

PR 8's worker loop re-raised any non-``ReproError`` after erroring its
chunk's futures — the thread died, and every query queued behind it
hung forever (with one worker, the whole engine).  The
:class:`Supervisor` closes that liveness hole: a monitor thread scans
the engine's worker threads, and any thread found dead while the
engine is accepting work is **restarted** with capped exponential
backoff.  The dying worker resolves its in-flight query as a
structured error and requeues the untouched remainder of its chunk, so
a crash costs exactly one query one answer — the serving chaos suite
(``tests/serve/test_chaos.py``) drives seeded ``crash`` faults through
this path and asserts no future is ever stranded.

Backoff is per worker index and *consecutive*: each crash doubles the
restart delay up to *backoff_cap*; a worker that stays up for
*heal_seconds* resets its count.  A crash loop therefore converges to
one restart per *backoff_cap* seconds instead of a hot spin, and
*max_restarts* (``None`` = never give up) can retire a hopeless worker
slot entirely — if every slot retires, the engine fails submissions
instead of queueing into the void.
"""

from __future__ import annotations

import threading
from time import monotonic

__all__ = ["Supervisor"]


class Supervisor:
    """Monitors and restarts an :class:`~repro.serve.engine.Engine`'s
    worker threads (see the module docstring).

    The supervisor only acts while the engine is accepting work; the
    clean worker exits during ``close()`` are never "restarted".  All
    interaction with the engine goes through two methods the engine
    provides: ``_worker_alive(index)`` and ``_respawn_worker(index)``.
    """

    def __init__(
        self,
        engine,
        *,
        backoff_base: float = 0.02,
        backoff_cap: float = 1.0,
        heal_seconds: float = 5.0,
        check_interval: float = 0.02,
        max_restarts: "int | None" = None,
    ) -> None:
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        self.engine = engine
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heal_seconds = heal_seconds
        self.check_interval = check_interval
        self.max_restarts = max_restarts
        self.restarts = 0
        self.crashes = 0
        #: worker indices retired after max_restarts consecutive crashes
        self.retired: set = set()
        self._counts: dict = {}      # index -> consecutive crash count
        self._last_crash: dict = {}  # index -> monotonic time
        self._due: dict = {}         # index -> restart due time
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- signals -------------------------------------------------------------

    def notify_crash(self, index: int, exc: BaseException) -> None:
        """Called by a worker on its way down: schedules the restart
        immediately instead of waiting for the next liveness scan."""
        self._note_crash(index)
        self._wake.set()

    def _note_crash(self, index: int) -> None:
        now = monotonic()
        with self._lock:
            if index in self._due:
                return  # already scheduled
            last = self._last_crash.get(index)
            if last is not None and now - last > self.heal_seconds:
                self._counts[index] = 0  # healthy for a while: forgive
            self._last_crash[index] = now
            count = self._counts.get(index, 0) + 1
            self._counts[index] = count
            self.crashes += 1
            if (
                self.max_restarts is not None
                and count > self.max_restarts
            ):
                self.retired.add(index)
                return
            delay = min(
                self.backoff_base * (2 ** (count - 1)), self.backoff_cap
            )
            self._due[index] = now + delay

    # -- the monitor loop ----------------------------------------------------

    def _run(self) -> None:
        engine = self.engine
        while not self._stop.is_set():
            self._wake.wait(self.check_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            if not engine._accepting():
                continue
            now = monotonic()
            for index in range(engine.workers):
                if index in self.retired:
                    continue
                with self._lock:
                    due = self._due.get(index)
                if due is None:
                    # Liveness scan: catch deaths that never notified.
                    if not engine._worker_alive(index):
                        self._note_crash(index)
                    continue
                if now < due:
                    continue
                if engine._worker_alive(index):
                    # Raced with a notify for a thread that recovered
                    # (respawned elsewhere); nothing to do.
                    with self._lock:
                        self._due.pop(index, None)
                    continue
                try:
                    engine._respawn_worker(index)
                except RuntimeError:
                    continue  # interpreter shutting down; give up quietly
                with self._lock:
                    self._due.pop(index, None)
                self.restarts += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "restarts": self.restarts,
                "crashes": self.crashes,
                "retired": sorted(self.retired),
                "pending": sorted(self._due),
            }

    def __repr__(self) -> str:
        return (
            f"Supervisor(restarts={self.restarts}, "
            f"crashes={self.crashes}, retired={sorted(self.retired)})"
        )
