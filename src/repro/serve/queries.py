"""Query and result types for the serving layer.

One query names a derived computation (relation + kind + mode), its
ground inputs, its fuel, and optionally its own resource budget; one
:class:`QueryResult` carries the three-valued outcome in structured
form.  A query that runs out of fuel or budget is **not an error** —
it resolves with ``status="gave_up"`` and a :class:`GiveUp` saying
which limit stopped it (mirroring the paper's indefinite ``None``
outcome and the resilience layer's :class:`~repro.resilience.budget.
Exhausted` diagnosis).  Nor is a query the engine refused to run:
``status="shed"`` with ``GiveUp("admission" | "expired" | "overload"
| "breaker" | "shutdown")`` means admission control, deadline expiry,
the overload ladder, a shape breaker, or shutdown dropped the query
before (or instead of) executing it — see
:mod:`repro.serve.admission`.  ``status="error"`` is reserved for
queries that cannot run at all (unknown relation, unschedulable mode)
or whose execution raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class CheckQuery:
    """Decide ``rel(args...)`` — the ``DecOpt`` kind."""

    rel: str
    args: tuple
    fuel: int = 64
    max_ops: "int | None" = None
    deadline_seconds: "float | None" = None


@dataclass(frozen=True)
class EnumQuery:
    """Enumerate outputs of ``rel`` under *mode* for inputs *ins* —
    the ``EnumSizedSuchThat`` kind.  *max_values* truncates the answer
    (``complete`` is then False even without a fuel marker)."""

    rel: str
    mode: str
    ins: tuple = ()
    fuel: int = 8
    max_values: "int | None" = 32
    max_ops: "int | None" = None
    deadline_seconds: "float | None" = None


@dataclass(frozen=True)
class GenQuery:
    """Sample one output of ``rel`` under *mode* for inputs *ins* —
    the ``GenSizedSuchThat`` kind.  *seed* makes the draw replayable;
    ``None`` lets the worker draw from OS entropy."""

    rel: str
    mode: str
    ins: tuple = ()
    fuel: int = 8
    seed: "int | None" = None
    max_ops: "int | None" = None
    deadline_seconds: "float | None" = None


Query = "CheckQuery | EnumQuery | GenQuery"


@dataclass
class GiveUp:
    """Why a query stopped without a definite answer.

    *reason* is ``"fuel"`` (the indefinite outcome at the query's
    fuel), ``"retries"`` (a generator burned its retry budget), or a
    budget limit name from :class:`~repro.resilience.budget.Exhausted`
    (``"deadline"``, ``"ops"``, ``"depth"``, ``"fault:..."``);
    *exhausted* carries the structured diagnosis in the budget case.
    """

    reason: str
    exhausted: Any = None

    def as_dict(self) -> dict:
        ex = self.exhausted
        return {
            "reason": self.reason,
            "exhausted": ex.as_dict() if hasattr(ex, "as_dict") else ex,
        }


@dataclass
class QueryResult:
    """The outcome of one served query.

    ``status`` is ``"ok"`` / ``"gave_up"`` / ``"shed"`` / ``"error"``.
    ``value`` is the definite answer on ``ok``: a bool for checks, a
    list of output tuples for enums (with ``complete`` telling whether
    it is provably all of them), an output tuple for gens.  A gave-up
    enum still carries the outputs found before the limit hit — and so
    does an erroring one (the values found before the raise).  A shed
    query never executed; its ``give_up.reason`` says which admission
    mechanism dropped it.

    ``seed`` is the RNG seed a :class:`GenQuery` actually ran under
    (the query's own, or the worker's entropy draw) — recorded on
    every status, including ``error``, so any failure is replayable
    with ``GenQuery(..., seed=result.seed)``.
    """

    query: Any
    status: str
    value: Any = None
    complete: "bool | None" = None
    give_up: "GiveUp | None" = None
    error: "str | None" = None
    elapsed_seconds: float = 0.0
    worker: "int | None" = None
    batched: bool = False
    # Telemetry coordinates: the query id carried submit→queue→batch→
    # execute (0 when the engine runs without telemetry) and the time
    # the query waited in the engine queue before service began.
    qid: int = 0
    queue_seconds: float = 0.0
    # The RNG seed a GenQuery ran under (None for other kinds).
    seed: "int | None" = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        q = self.query
        kind = {
            "CheckQuery": "check",
            "EnumQuery": "enum",
            "GenQuery": "gen",
        }.get(type(q).__name__, type(q).__name__)
        value = self.value
        if kind == "enum" and value is not None:
            value = [[repr(v) for v in tup] for tup in value]
        elif kind == "gen" and value is not None:
            value = [repr(v) for v in value]
        return {
            "kind": kind,
            "rel": q.rel,
            "status": self.status,
            "value": value,
            "complete": self.complete,
            "give_up": self.give_up.as_dict() if self.give_up else None,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
            "batched": self.batched,
            "qid": self.qid,
            "queue_seconds": self.queue_seconds,
            "seed": self.seed,
        }
