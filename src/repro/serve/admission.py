"""Admission control for the serving engine: bounded queues, deadline
expiry, and an adaptive degradation ladder.

PR 8's engine queued without bound: a burst 4x over capacity made
*every* query's latency grow with its queue position, and nothing shed
load until callers timed out on their own.  This module is the
serving-layer governor that PR 5's :class:`~repro.resilience.budget.
Budget` is for a single computation:

* :class:`AdmissionQueue` — a bounded FIFO with three full-queue
  policies.  ``block`` applies backpressure to the submitter;
  ``reject`` sheds the *incoming* query; ``shed_oldest`` evicts the
  queue head (the query that has already waited longest and is most
  likely to be expired or useless by service time) to make room.  A
  shed query is **not an error**: its future resolves with
  ``status="shed"`` and ``GiveUp("admission")`` — the same structured
  three-valued degradation budgets use.  Tickets carry an **absolute
  deadline** stamped at submit; an expired ticket is shed on dequeue
  without executing (reason ``"expired"``), and the executor budget of
  a deadlined query gets only the *remaining* time.
* :class:`OverloadController` — the degradation ladder.  It reads the
  queue-depth gauge (PR 9's obvious input signal) and a sliding-window
  service-latency blowup detector (PR 5's
  :class:`~repro.resilience.campaign.CircuitBreaker`, lifted from op
  costs to seconds) and climbs ``NORMAL -> TIGHTEN -> SHED``:
  *TIGHTEN* scales the engine's default per-query budgets down so each
  query does less work; *SHED* refuses new work at submit (reason
  ``"overload"``) until the queue drains below the low-water mark.
* :class:`ShapeBreaker` — per-``(kind, rel)`` fast-fail.  A shape
  whose queries repeatedly exhaust their budgets is a pure waste of
  worker time (every attempt burns a full budget and answers
  indefinitely anyway); after *threshold* consecutive exhaustions the
  breaker opens and queries of that shape shed immediately (reason
  ``"breaker"``), with one probe admitted per *cooldown* sheds so a
  recovered shape closes the breaker again.

Everything here is policy; the engine stays the mechanism.  With
``queue_max=None`` (the default) none of this is in the hot path —
``benchmarks/bench_admission.py`` pins admission-off overhead at
<= 1.05x of the frozen PR 9 engine.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import Any, Callable, Iterable

from ..resilience.campaign import CircuitBreaker

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionQueue",
    "OverloadController",
    "ShapeBreaker",
    "Ticket",
]

ADMISSION_POLICIES = ("block", "reject", "shed_oldest")


class Ticket:
    """One enqueued query: the unit the admission queue manages.

    *deadline* is absolute (``time.monotonic``); ``None`` means the
    query never expires in queue.  *fault* is the injected worker
    fault tag a claiming worker stamped on the ticket (chaos testing
    only; see :class:`~repro.resilience.faults.WorkerFaultPlan`).
    """

    __slots__ = ("query", "future", "qid", "submitted", "deadline", "fault")

    def __init__(self, query, future, qid, submitted, deadline=None):
        self.query = query
        self.future = future
        self.qid = qid
        self.submitted = submitted
        self.deadline = deadline
        self.fault = None

    def expired(self, now: "float | None" = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else monotonic()) >= self.deadline

    def remaining(self, now: "float | None" = None) -> "float | None":
        """Seconds until the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - (now if now is not None else monotonic())

    def __repr__(self) -> str:
        return f"Ticket(qid={self.qid}, {type(self.query).__name__})"


class AdmissionQueue:
    """A bounded FIFO of :class:`Ticket`\\ s with shed callbacks.

    *maxsize* ``None`` = unbounded (the legacy engine's behavior);
    *policy* is one of :data:`ADMISSION_POLICIES`.  *on_shed* is
    called — **outside the queue lock** — as ``on_shed(ticket,
    reason)`` for every ticket the queue gives up on: ``"admission"``
    (rejected at a full queue, or evicted by ``shed_oldest``),
    ``"expired"`` (deadline passed while queued), ``"shutdown"``
    (drained at close).  Control sentinels (any non-Ticket object) are
    exempt from the bound and from shedding — they are how the engine
    delivers shutdown tokens through the same channel.
    """

    def __init__(
        self,
        maxsize: "int | None" = None,
        policy: str = "block",
        on_shed: "Callable[[Ticket, str], None] | None" = None,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.policy = policy
        self.on_shed = on_shed
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closing = False
        #: monotone shed counters by reason (read by Engine.stats)
        self.shed_counts: dict = {}

    # -- internals ----------------------------------------------------------

    def _count_tickets(self) -> int:
        return sum(1 for it in self._items if isinstance(it, Ticket))

    def _shed(self, victims: "list[tuple[Ticket, str]]") -> None:
        # Outside the lock: resolving a future runs caller callbacks.
        for ticket, reason in victims:
            self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
            if self.on_shed is not None:
                self.on_shed(ticket, reason)

    # -- write side ---------------------------------------------------------

    def put(self, ticket: Ticket) -> bool:
        """Admit *ticket*; ``False`` means it was shed instead (its
        future is already resolved by the shed callback)."""
        victims: list = []
        admitted = True
        with self._lock:
            if self._closing:
                victims.append((ticket, "shutdown"))
                admitted = False
            elif self.maxsize is not None:
                if self.policy == "block":
                    while (
                        self._count_tickets() >= self.maxsize
                        and not self._closing
                    ):
                        self._not_full.wait()
                    if self._closing:
                        victims.append((ticket, "shutdown"))
                        admitted = False
                elif self._count_tickets() >= self.maxsize:
                    if self.policy == "reject":
                        victims.append((ticket, "admission"))
                        admitted = False
                    else:  # shed_oldest: evict the head to make room
                        for it in list(self._items):
                            if isinstance(it, Ticket):
                                self._items.remove(it)
                                victims.append((it, "admission"))
                                break
            if admitted:
                self._items.append(ticket)
                self._not_empty.notify()
        self._shed(victims)
        return admitted

    def put_control(self, token: Any) -> None:
        """Enqueue a control sentinel, exempt from the bound."""
        with self._lock:
            self._items.append(token)
            self._not_empty.notify()

    def put_front(self, items: Iterable) -> None:
        """Requeue already-admitted items at the head (crash recovery);
        the bound does not re-apply — admission happened once."""
        items = list(items)
        with self._lock:
            self._items.extendleft(reversed(items))
            self._not_empty.notify(len(items))

    # -- read side ----------------------------------------------------------

    def get(self, timeout: "float | None" = None):
        """Dequeue the next live item: a :class:`Ticket` that has not
        expired, or a control sentinel.  Expired tickets are shed
        (reason ``"expired"``) and skipped.  ``None`` on timeout."""
        victims: list = []
        item = None
        with self._lock:
            while True:
                while not self._items:
                    if not self._not_empty.wait(timeout):
                        break
                if not self._items:
                    break
                candidate = self._items.popleft()
                if isinstance(candidate, Ticket):
                    self._not_full.notify()
                    if candidate.expired():
                        victims.append((candidate, "expired"))
                        continue
                item = candidate
                break
        self._shed(victims)
        return item

    def get_nowait(self):
        """Non-blocking :meth:`get`; ``None`` when empty."""
        victims: list = []
        item = None
        with self._lock:
            while self._items:
                candidate = self._items.popleft()
                if isinstance(candidate, Ticket):
                    self._not_full.notify()
                    if candidate.expired():
                        victims.append((candidate, "expired"))
                        continue
                item = candidate
                break
        self._shed(victims)
        return item

    # -- lifecycle ----------------------------------------------------------

    def start_closing(self) -> None:
        """Refuse new admissions and wake blocked :meth:`put` callers
        (their tickets shed with reason ``"shutdown"``)."""
        with self._lock:
            self._closing = True
            self._not_full.notify_all()

    def drain(self, reason: str = "shutdown") -> int:
        """Shed every queued ticket (control sentinels stay); returns
        the number shed.  The engine's ``close`` calls this after the
        drain window so no future is ever stranded."""
        victims: list = []
        with self._lock:
            keep: deque = deque()
            for it in self._items:
                if isinstance(it, Ticket):
                    victims.append((it, reason))
                else:
                    keep.append(it)
            self._items = keep
            self._not_full.notify_all()
        self._shed(victims)
        return len(victims)

    def qsize(self) -> int:
        with self._lock:
            return self._count_tickets()

    def empty(self) -> bool:
        return self.qsize() == 0

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(size={self.qsize()}, maxsize={self.maxsize}, "
            f"policy={self.policy!r})"
        )


class OverloadController:
    """The degradation ladder: ``NORMAL -> TIGHTEN -> SHED``.

    Two input signals, both cheap:

    * **queue fill** — depth / *queue_max* (dead when the queue is
      unbounded).  Fill >= *high_fill* climbs straight to ``SHED``;
      fill >= *low_fill* holds at least ``TIGHTEN``; the ladder only
      descends once fill drops below *low_fill* (hysteresis, so the
      level does not flap around one threshold).
    * **latency blowup** — per-query service seconds fed to a
      :class:`~repro.resilience.campaign.CircuitBreaker` (window mean
      vs. baseline mean, *latency_factor*).  An open breaker holds
      ``TIGHTEN`` for *hold* further observations, then re-baselines —
      a persistent slowdown keeps re-opening it, a transient one
      decays.

    ``TIGHTEN`` reports :meth:`budget_scale` < 1: the engine scales
    its *default* per-query budgets (never a query's own explicit
    budget) so every query does less work under pressure.  ``SHED``
    additionally makes :meth:`should_shed` true: new queries resolve
    as ``status="shed"`` / ``GiveUp("overload")`` at submit, keeping
    the served ones fast — the p99 bound
    ``benchmarks/bench_admission.py`` pins.
    """

    NORMAL, TIGHTEN, SHED = 0, 1, 2

    def __init__(
        self,
        *,
        queue_max: "int | None" = None,
        high_fill: float = 0.75,
        low_fill: float = 0.25,
        latency_window: int = 16,
        latency_factor: float = 8.0,
        min_samples: int = 32,
        hold: int = 32,
        tighten_scale: float = 0.5,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        if not 0.0 < low_fill <= high_fill <= 1.0:
            raise ValueError("need 0 < low_fill <= high_fill <= 1")
        if not 0.0 < tighten_scale <= 1.0:
            raise ValueError("tighten_scale must be in (0, 1]")
        self.queue_max = queue_max
        self.high_fill = high_fill
        self.low_fill = low_fill
        self.hold = hold
        self.tighten_scale = tighten_scale
        self.breaker = breaker or CircuitBreaker(
            window=latency_window,
            factor=latency_factor,
            min_samples=min_samples,
            max_history=max(4 * latency_window, 128),
            # Costs here are seconds, not op counts: the baseline
            # floor must sit below any plausible service time.
            floor=1e-6,
        )
        self.level = self.NORMAL
        self.latency_opens = 0
        self._latency_hold = 0
        self._lock = threading.Lock()

    def _fill(self, depth: int) -> float:
        if not self.queue_max:
            return 0.0
        return depth / self.queue_max

    def _relevel(self, depth: int) -> int:
        fill = self._fill(depth)
        if fill >= self.high_fill:
            level = self.SHED
        elif fill >= self.low_fill or self._latency_hold > 0:
            level = self.TIGHTEN
        else:
            level = self.NORMAL
        # Hysteresis: only descend when fill is back under low water.
        if level < self.level and fill >= self.low_fill:
            level = self.level
        self.level = level
        return level

    def note_depth(self, depth: int) -> int:
        """Submit-side relevel from a fresh queue depth (bursts raise
        depth faster than workers observe latencies)."""
        with self._lock:
            return self._relevel(depth)

    def observe(self, depth: int, service_seconds: float) -> int:
        """Worker-side input: one served query's service time plus the
        current depth; returns the new ladder level."""
        with self._lock:
            if self._latency_hold > 0:
                self._latency_hold -= 1
            reason = self.breaker.record(service_seconds)
            if reason is not None:
                self.latency_opens += 1
                self._latency_hold = self.hold
                self.breaker.reset()  # re-baseline after the blowup
            return self._relevel(depth)

    def should_shed(self, depth: int) -> bool:
        return self.note_depth(depth) >= self.SHED

    def budget_scale(self) -> float:
        """The factor applied to the engine's default budget limits
        (1.0 at ``NORMAL``)."""
        return self.tighten_scale if self.level >= self.TIGHTEN else 1.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self.level,
                "latency_opens": self.latency_opens,
                "latency_hold": self._latency_hold,
                "queue_max": self.queue_max,
            }

    def __repr__(self) -> str:
        names = {0: "NORMAL", 1: "TIGHTEN", 2: "SHED"}
        return f"OverloadController(level={names[self.level]})"


class ShapeBreaker:
    """Fast-fail for query shapes that repeatedly exhaust budgets.

    Tracks consecutive budget exhaustions per ``(kind, rel)``; at
    *threshold* the shape's breaker opens and :meth:`check` starts
    answering ``True`` (shed, reason ``"breaker"``) without burning a
    budget.  Every *cooldown* sheds one probe query is admitted; a
    definite (or plain-fuel) answer closes the breaker, another
    exhaustion re-opens it.  This is PR 5's campaign circuit breaker
    lifted to the serving layer: there the signal was op-cost blowup
    across tests of one property, here it is budget exhaustion across
    queries of one shape.
    """

    def __init__(self, threshold: int = 3, cooldown: int = 16) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        # shape -> [consecutive_exhaustions, open, sheds_since_probe]
        self._state: dict = {}
        self._lock = threading.Lock()
        self.opened = 0
        self.shed = 0

    def check(self, shape: tuple) -> bool:
        """``True`` = shed this query now (breaker open, not probing)."""
        with self._lock:
            st = self._state.get(shape)
            if st is None or not st[1]:
                return False
            st[2] += 1
            if st[2] > self.cooldown:
                st[2] = 0  # admit one probe
                return False
            self.shed += 1
            return True

    def record(self, shape: tuple, exhausted: bool) -> None:
        """Feed one *executed* query's outcome (shed queries never ran
        and must not be recorded)."""
        with self._lock:
            if not exhausted:
                self._state.pop(shape, None)
                return
            st = self._state.setdefault(shape, [0, False, 0])
            st[0] += 1
            if st[0] >= self.threshold and not st[1]:
                st[1] = True
                st[2] = 0
                self.opened += 1
            elif st[1]:
                st[2] = 0  # failed probe: restart the cooldown

    def open_shapes(self) -> "list[tuple]":
        with self._lock:
            return sorted(s for s, st in self._state.items() if st[1])

    def snapshot(self) -> dict:
        return {
            "open": ["{}:{}".format(*s) for s in self.open_shapes()],
            "opened": self.opened,
            "shed": self.shed,
        }

    def __repr__(self) -> str:
        return (
            f"ShapeBreaker(open={self.open_shapes()!r}, "
            f"threshold={self.threshold})"
        )
