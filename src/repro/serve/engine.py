"""The serving engine: sessioned worker threads over one shared context.

An :class:`Engine` owns a preloaded :class:`~repro.core.context.
Context` and a pool of worker threads.  Each worker binds its **own**
:class:`~repro.core.session.Session` once at thread start, so the
runtime state of concurrent queries never collides: budgets install
per worker, stats count per worker, and (with ``memoize=True``) each
worker fills its own memo shard — the worker-sharded memo
architecture.  Derived artifacts (schedules, plans, compiled code) and
instances are shared through the context; first-use derivation is
serialized by the context's derive lock, so a relation is derived once
no matter which worker's query arrives first.

Queries resolve to structured :class:`~repro.serve.queries.
QueryResult`\\ s — a budget- or fuel-limited query *gives up*, it does
not error, and a query the engine refuses to run is **shed** (also not
an error).  Submission is non-blocking (:meth:`Engine.submit` returns
a :class:`concurrent.futures.Future`); :meth:`Engine.arun` awaits the
same future from asyncio.  Workers drain the queue in chunks and run
same-relation check queries through the derived checker's amortized
batch entry point (``check_batch``) when no budget applies — the
batched front-end that makes point-query traffic cheap.

High availability (PR 10) wraps three governors around that core:

* **admission control** — the queue is an :class:`~repro.serve.
  admission.AdmissionQueue`: *queue_max* bounds it, *admission* picks
  the full-queue policy (``block`` / ``reject`` / ``shed_oldest``),
  and an :class:`~repro.serve.admission.OverloadController` (enabled
  automatically with a bounded queue) climbs the degradation ladder —
  tightening default budgets under pressure, shedding at submit when
  saturated.  A :class:`~repro.serve.admission.ShapeBreaker` fast-
  fails ``(kind, rel)`` shapes that repeatedly exhaust their budgets.
* **deadline-aware queueing** — a query carrying ``deadline_seconds``
  gets an *absolute* deadline stamped at submit: it expires in queue
  without executing (shed, reason ``"expired"``), and when it does
  execute its budget gets only the *remaining* time, not the original
  allotment.  (The engine-level *deadline_seconds* default remains an
  execution-scoped budget, exactly as before.)
* **supervision** — a :class:`~repro.serve.supervisor.Supervisor`
  restarts crashed workers with capped exponential backoff.  A crash
  costs one query one structured error; the rest of the dying worker's
  chunk is requeued.  ``close(drain_timeout=...)`` resolves every
  outstanding future — served within the drain window, shed
  (``"shutdown"``) after it — and never strands one.  When the whole
  pool is dead (every slot retired, or no supervision), ``submit``
  raises instead of queueing into the void.

With ``queue_max=None`` (the default) none of the admission machinery
is active and the hot path matches the PR 9 engine —
``benchmarks/bench_admission.py`` pins the overhead at ≤ 1.05×.

Chaos testing hooks: *faults* takes a :class:`~repro.resilience.
faults.WorkerFaultPlan`; each worker counts the queries it claims
(ordinals persist across restarts) and fires the planned ``crash`` /
``stall`` / ``poison`` faults — the serving chaos suite
(``tests/serve/test_chaos.py``) drives seeded plans through every
recovery path and asserts no future is ever stranded.

Synchronous convenience::

    with Engine(ctx, workers=4) as eng:
        results = eng.run_batch([CheckQuery("le", args) for args in work])
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future
from time import monotonic
from typing import Any, Iterable

from ..core.context import Context
from ..core.errors import ReproError
from ..core.session import activate_session
from ..derive.api import derive_checker, derive_enumerator, derive_generator
from ..derive.memo import enable_memoization
from ..observe.metrics import Metrics
from ..observe.telemetry import Telemetry
from ..producers.option_bool import NONE_OB, SOME_TRUE
from ..producers.outcome import FAIL, OUT_OF_FUEL
from ..quickchick.runner import _SEED_SOURCE
from ..resilience.budget import budget_scope
from .admission import AdmissionQueue, OverloadController, ShapeBreaker, Ticket
from .queries import CheckQuery, EnumQuery, GenQuery, GiveUp, QueryResult
from .supervisor import Supervisor

_CLOSE = object()  # worker shutdown sentinel

_KINDS = {"CheckQuery": "check", "EnumQuery": "enum", "GenQuery": "gen"}

#: The per-worker counter fields ``Engine.stats()`` renders, in the
#: order of the legacy per-worker dicts.
_WORKER_FIELDS = ("queries", "batched", "gave_up", "errors")


class _InjectedCrash(BaseException):
    """A planned worker crash (chaos testing).  Derives from
    BaseException so the per-query isolation catches cannot swallow
    it — it must take the worker thread down like a real crash."""


class Engine:
    """Sessioned, batched query service over one context.

    *workers* threads each own a session (``serve-<i>``); *fuel* is
    the default fuel for queries created by the CLI, not a limit on
    query-carried fuel.  *max_ops* / *deadline_seconds* are the
    **default per-query budget** (``None`` = ungoverned); a query's
    own ``max_ops``/``deadline_seconds`` override them.  With
    ``memoize=True`` every worker session runs with memoization on —
    per-worker memo shards, no cross-worker locking.  *batch_max*
    bounds how many queued queries one worker drains per chunk (the
    batching window).

    High-availability knobs (see the module docstring):

    * *queue_max* / *admission* — bounded admission queue and its
      full-queue policy (``"block"`` backpressures the submitter,
      ``"reject"`` sheds the incoming query, ``"shed_oldest"`` evicts
      the head).  ``queue_max=None`` = unbounded, admission inactive.
    * *overload* — the degradation ladder: ``None`` enables an
      :class:`~repro.serve.admission.OverloadController` exactly when
      the queue is bounded; pass ``True``/``False`` to force, or a
      configured controller.
    * *breaker* — per-(kind, rel) fast-fail: ``None`` enables a
      :class:`~repro.serve.admission.ShapeBreaker` exactly when the
      engine has default budgets to exhaust; ``True``/``False``/
      instance to force.
    * *supervise* — worker supervision (default on): ``True``,
      ``False``, or a dict of :class:`~repro.serve.supervisor.
      Supervisor` keyword arguments (``backoff_base``, ``heal_seconds``,
      ``max_restarts``, ...).
    * *faults* — a :class:`~repro.resilience.faults.WorkerFaultPlan`
      for chaos testing (``None`` in production).

    *telemetry* switches on serving-layer observability: pass ``True``
    for a fresh :class:`~repro.observe.telemetry.Telemetry` with
    default sampling, or a configured instance (shareable across
    engines).  Every query then gets a campaign-unique id carried
    submit→queue→batch→execute, per-(kind, rel) latency histograms,
    queue-wait and batch-size distributions, queue-depth gauges, and —
    for sampled or slow queries only — the full span tree of the
    execution attached to its :class:`~repro.observe.telemetry.
    QueryEvent`.  Telemetry off costs a couple of locked counter
    bumps per query (the ``bench_telemetry.py`` bars pin both modes).

    All engine counters live in one locked
    :class:`~repro.observe.metrics.Metrics` registry (the telemetry's
    when on, a private one when off); :meth:`stats` renders the legacy
    per-worker dict shape as a *view* of that registry, so worker
    threads never mutate shared dicts unlocked.
    """

    def __init__(
        self,
        ctx: Context,
        *,
        workers: int = 1,
        max_ops: "int | None" = None,
        deadline_seconds: "float | None" = None,
        memoize: bool = False,
        batch: bool = True,
        batch_max: int = 64,
        telemetry: "Telemetry | bool | None" = None,
        queue_max: "int | None" = None,
        admission: str = "block",
        overload: "OverloadController | bool | None" = None,
        breaker: "ShapeBreaker | bool | None" = None,
        supervise: "bool | dict" = True,
        faults: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.ctx = ctx
        self.workers = workers
        self.max_ops = max_ops
        self.deadline_seconds = deadline_seconds
        self.memoize = memoize
        self.batch = batch
        self.batch_max = max(1, batch_max)
        if telemetry is True:
            telemetry = Telemetry()
        elif telemetry is False:
            telemetry = None
        self.telemetry: "Telemetry | None" = telemetry
        if telemetry is not None:
            self._metrics = telemetry.metrics
            self._lock = telemetry.lock
        else:
            self._metrics = Metrics()
            self._lock = threading.Lock()
        self._queue = AdmissionQueue(
            maxsize=queue_max, policy=admission, on_shed=self._shed_ticket
        )
        self.queue_max = queue_max
        if overload is None:
            overload = queue_max is not None
        if overload is True:
            overload = OverloadController(queue_max=queue_max)
        elif overload is False:
            overload = None
        self._overload: "OverloadController | None" = overload
        if breaker is None:
            breaker = max_ops is not None or deadline_seconds is not None
        if breaker is True:
            breaker = ShapeBreaker()
        elif breaker is False:
            breaker = None
        self._breaker: "ShapeBreaker | None" = breaker
        if supervise is True:
            supervise = {}
        self._supervisor: "Supervisor | None" = (
            Supervisor(self, **supervise) if isinstance(supervise, dict)
            else None
        )
        self._supervising = False
        self.faults = faults
        #: per-worker served-query ordinals (1-based), persisting across
        #: restarts so each planned fault fires exactly once
        self._ordinals: dict = {}
        self._threads: "list[threading.Thread | None]" = [None] * workers
        self._started = False
        self._closing = False
        self._closed = False
        self._close_done = threading.Event()
        self._state_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Engine":
        if self._started:
            return self
        self._started = True
        for i in range(self.workers):
            self._spawn(i)
        if self._supervisor is not None:
            self._supervisor.start()
            self._supervising = True
        return self

    def close(self, drain_timeout: "float | None" = None) -> None:
        """Stop the engine, resolving **every** outstanding future.

        *drain_timeout* bounds how long workers keep serving the
        already-admitted queue: ``None`` drains it fully (bounded in
        practice — no new admissions once closing, and the wait ends
        early if no worker is left alive to drain), ``0`` sheds
        immediately, *t* waits up to *t* seconds.  Whatever is still
        queued after the window is shed with reason ``"shutdown"`` —
        shed, not stranded.  Idempotent; concurrent callers block
        until the first close completes.
        """
        with self._state_lock:
            if self._closed:
                return
            if self._closing:
                already = True
            else:
                already = False
                self._closing = True
        if already:
            self._close_done.wait()
            return
        try:
            q = self._queue
            q.start_closing()  # blocked put() callers shed "shutdown"
            if self._started:
                deadline = (
                    None if drain_timeout is None
                    else monotonic() + drain_timeout
                )
                while not q.empty():
                    if deadline is not None and monotonic() >= deadline:
                        break
                    if not any(
                        t is not None and t.is_alive() for t in self._threads
                    ):
                        break  # nobody left to drain it
                    time.sleep(0.002)
            q.drain("shutdown")
            if self._started:
                for _ in range(self.workers):
                    q.put_control(_CLOSE)
                if self._supervising:
                    self._supervisor.stop()
                    self._supervising = False
                for t in self._threads:
                    if t is not None:
                        t.join()
                # A worker that crashed mid-close may have requeued its
                # chunk after the first drain; nothing will serve it now.
                q.drain("shutdown")
            self._closed = True
        finally:
            self._close_done.set()

    def __enter__(self) -> "Engine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, query) -> "Future[QueryResult]":
        """Enqueue *query*; the future resolves to its
        :class:`QueryResult` (never to an exception — failures become
        ``status="error"`` results, refusals ``status="shed"``).
        Raises only when the engine cannot serve at all: it is closed,
        or the whole worker pool is dead."""
        if self._closed or self._closing:
            raise RuntimeError("engine is closed")
        if not self._started:
            self.start()
        if self._pool_dead():
            raise RuntimeError(
                "engine worker pool is dead (every worker crashed and "
                "none can be restarted)"
            )
        tel = self.telemetry
        qid = tel.next_qid() if tel is not None else 0
        now = monotonic()
        per_query = getattr(query, "deadline_seconds", None)
        deadline = now + per_query if per_query is not None else None
        ticket = Ticket(query, Future(), qid, now, deadline)
        ctl = self._overload
        if ctl is not None and ctl.should_shed(self._queue.qsize()):
            self._note_level(ctl.level)
            self._shed_ticket(ticket, "overload")
            return ticket.future
        brk = self._breaker
        if brk is not None and brk.check(
            (_KINDS.get(type(query).__name__, "?"), getattr(query, "rel", "?"))
        ):
            self._shed_ticket(ticket, "breaker")
            return ticket.future
        self._queue.put(ticket)
        if tel is not None:
            tel.observe_queue_depth(self._queue.qsize())
        return ticket.future

    def run(self, query) -> QueryResult:
        """Submit and wait."""
        return self.submit(query).result()

    def run_batch(self, queries: Iterable[Any]) -> list[QueryResult]:
        """Submit all, gather results in submission order."""
        futures = [self.submit(q) for q in queries]
        return [f.result() for f in futures]

    async def arun(self, query) -> QueryResult:
        """Await one query from asyncio without blocking the loop."""
        import asyncio

        return await asyncio.wrap_future(self.submit(query))

    async def arun_batch(self, queries: Iterable[Any]) -> list[QueryResult]:
        import asyncio

        futures = [asyncio.wrap_future(self.submit(q)) for q in queries]
        return list(await asyncio.gather(*futures))

    # -- read side -----------------------------------------------------------

    def stats(self) -> dict:
        """Per-worker served/batched/gave-up/error counts — a rendered
        view of the locked metrics registry (the legacy dict shape) —
        plus shed counts by reason, crash/restart totals, and the
        governors' snapshots.  With telemetry on, a ``"telemetry"``
        key carries the full
        :meth:`~repro.observe.telemetry.Telemetry.snapshot`."""
        with self._lock:
            snap = dict(self._metrics.counters)
        prefix = "serve.shed.reason."
        out = {
            "workers": self.workers,
            "per_worker": [
                {
                    f: snap.get(f"serve.worker.{i}.{f}", 0)
                    for f in _WORKER_FIELDS
                }
                for i in range(self.workers)
            ],
            "shed": {
                k[len(prefix):]: v
                for k, v in snap.items()
                if k.startswith(prefix)
            },
            "crashes": snap.get("serve.worker_crashes", 0),
            "restarts": snap.get("serve.worker_restarts", 0),
        }
        if self._overload is not None:
            out["overload"] = self._overload.snapshot()
        if self._breaker is not None:
            out["breaker"] = self._breaker.snapshot()
        if self._supervisor is not None:
            out["supervisor"] = self._supervisor.snapshot()
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
        return out

    def prepare(self, queries: Iterable[Any]) -> None:
        """Derive every instance the queries will need, up front —
        first-query latency becomes load-time latency."""
        seen = set()
        for q in queries:
            key = (type(q).__name__, q.rel, getattr(q, "mode", None))
            if key in seen:
                continue
            seen.add(key)
            if isinstance(q, CheckQuery):
                derive_checker(self.ctx, q.rel)
            elif isinstance(q, EnumQuery):
                derive_enumerator(self.ctx, q.rel, q.mode)
            elif isinstance(q, GenQuery):
                derive_generator(self.ctx, q.rel, q.mode)

    # -- supervision hooks ---------------------------------------------------

    def _accepting(self) -> bool:
        """Whether worker deaths should be treated as crashes (the
        supervisor's restart gate — clean shutdown exits are not)."""
        return self._started and not self._closing and not self._closed

    def _worker_alive(self, index: int) -> bool:
        t = self._threads[index]
        return t is not None and t.is_alive()

    def _spawn(self, index: int) -> None:
        t = threading.Thread(
            target=self._worker_main, args=(index,),
            name=f"repro-serve-{index}", daemon=True,
        )
        self._threads[index] = t
        t.start()

    def _respawn_worker(self, index: int) -> None:
        """Supervisor callback: bring a crashed worker slot back."""
        self._spawn(index)
        with self._lock:
            c = self._metrics.counters
            c["serve.worker_restarts"] = c.get("serve.worker_restarts", 0) + 1

    def _pool_dead(self) -> bool:
        if not self._started:
            return False
        if any(t is not None and t.is_alive() for t in self._threads):
            return False
        if self._supervisor is not None and self._supervising:
            # Restarts are coming unless every slot has been retired.
            return len(self._supervisor.retired) >= self.workers
        return True

    # -- shedding ------------------------------------------------------------

    def _shed_ticket(self, ticket: Ticket, reason: str) -> None:
        """Resolve *ticket* as ``status="shed"`` — the structured
        refusal used for admission rejects, evictions, in-queue
        expiry, overload, open shape breakers, and shutdown."""
        query = ticket.query
        queue_s = monotonic() - ticket.submitted
        tel = self.telemetry
        if tel is not None:
            tel.record_shed(
                qid=ticket.qid,
                kind=_KINDS.get(type(query).__name__, "?"),
                rel=getattr(query, "rel", "?"),
                mode=getattr(query, "mode", ""),
                reason=reason,
                queue_seconds=queue_s,
            )
        else:
            with self._lock:
                c = self._metrics.counters
                for key in ("serve.shed", f"serve.shed.reason.{reason}"):
                    c[key] = c.get(key, 0) + 1
        ticket.future.set_result(
            QueryResult(
                query, "shed", give_up=GiveUp(reason),
                qid=ticket.qid, queue_seconds=queue_s,
            )
        )

    def _note_level(self, level: int) -> None:
        # Gauge store is unlocked by design (single dict store, GIL-
        # atomic) — same contract as Telemetry.observe_queue_depth.
        self._metrics.gauges["serve.overload_level"] = level

    # -- worker side ---------------------------------------------------------

    def _claim(self, index: int, ticket: Ticket) -> None:
        """Count one claimed query and fire any planned fault for it.
        ``stall`` sleeps here; ``poison`` tags the ticket for its
        execution to raise; ``crash`` raises :class:`_InjectedCrash`
        (the caller's crash handler takes the worker down)."""
        plan = self.faults
        if plan is None:
            return
        nth = self._ordinals.get(index, 0) + 1
        self._ordinals[index] = nth
        kind = plan.draw(index, nth)
        if kind is None:
            return
        if kind == "stall":
            time.sleep(plan.stall_seconds)
        elif kind == "poison":
            ticket.fault = "poison"
        else:  # crash
            ticket.fault = "crash"
            raise _InjectedCrash(f"planned crash: worker {index} query {nth}")

    def _crash(self, index: int, ticket: "Ticket | None", exc) -> None:
        """A worker is going down: resolve its in-flight ticket as a
        structured error, account the crash, wake the supervisor."""
        if ticket is not None:
            queue_s = monotonic() - ticket.submitted
            result = QueryResult(
                ticket.query, "error", error=f"worker crashed: {exc!r}",
                worker=index, qid=ticket.qid, queue_seconds=queue_s,
            )
            tel = self.telemetry
            if tel is not None:
                tel.record_query(
                    qid=ticket.qid,
                    kind=_KINDS.get(type(ticket.query).__name__, "?"),
                    rel=getattr(ticket.query, "rel", "?"),
                    mode=getattr(ticket.query, "mode", ""),
                    status="error",
                    worker=index,
                    queue_seconds=queue_s,
                )
            else:
                self._bump(index, queries=1, errors=1)
            ticket.future.set_result(result)
        with self._lock:
            c = self._metrics.counters
            c["serve.worker_crashes"] = c.get("serve.worker_crashes", 0) + 1
        if self._supervising and self._accepting():
            self._supervisor.notify_crash(index, exc)

    def _worker_main(self, index: int) -> None:
        ctx = self.ctx
        # Bind this thread's session for the thread's whole life; the
        # binding is thread-local (contextvars), so each worker sees
        # only its own state.
        activate_session(ctx, ctx.new_session(f"serve-{index}"))
        if self.memoize:
            with ctx._derive_lock:
                # Wrapping instances mutates the shared table
                # (idempotently); serialize it.  The memo *flag* and
                # tables land in this worker's session.
                enable_memoization(ctx)
        q = self._queue
        while True:
            item = q.get()
            if item is None:
                continue
            if item is _CLOSE:
                return
            chunk: list = []
            claiming: "Ticket | None" = item
            try:
                self._claim(index, item)
                chunk.append(item)
                if self.batch:
                    while len(chunk) < self.batch_max:
                        nxt = q.get_nowait()
                        if nxt is None:
                            break
                        if nxt is _CLOSE:
                            q.put_control(_CLOSE)  # keep the token live
                            break
                        claiming = nxt
                        self._claim(index, nxt)
                        chunk.append(nxt)
                claiming = None
                self._serve_chunk(index, chunk)
            except BaseException as e:  # crash: never strand a Future
                survivors = [t for t in chunk if not t.future.done()]
                if (
                    claiming is not None
                    and claiming not in chunk
                    and not claiming.future.done()
                ):
                    # The crash fired at claim time: the ticket being
                    # claimed is the in-flight victim.
                    survivors.insert(0, claiming)
                victim = survivors[0] if survivors else None
                if len(survivors) > 1:
                    # Untouched chunk neighbors go back for the
                    # restarted worker (or a sibling) to serve.
                    q.put_front(survivors[1:])
                self._crash(index, victim, e)
                return

    def _serve_chunk(self, index: int, chunk: list) -> None:
        # Group plain check queries per (rel, fuel) for the amortized
        # batch entry; everything else runs singly.  "Plain" excludes
        # budgets, deadlines, poison tags, and queries sampled for
        # tracing — each of those needs its own execution.
        tel = self.telemetry
        groups: dict[tuple, list] = {}
        singles: list = []
        for t in chunk:
            query = t.query
            if (
                isinstance(query, CheckQuery)
                and t.deadline is None
                and t.fault is None
                and not self._limits(query)
                and len(chunk) > 1
                and not (
                    tel is not None
                    and tel.should_trace(t.qid, "check", query.rel)
                )
            ):
                groups.setdefault((query.rel, query.fuel), []).append(t)
            else:
                singles.append(t)
        for (rel, fuel), items in groups.items():
            if len(items) == 1:
                singles.extend(items)
                continue
            self._serve_check_batch(index, rel, fuel, items)
        for t in singles:
            if t.expired():
                # The deadline passed while chunk neighbors were served.
                self._shed_ticket(t, "expired")
                continue
            t.future.set_result(self._serve_one(index, t))

    def _bump(self, index: int, **fields: int) -> None:
        # Telemetry-off accounting: the same locked registry stats()
        # renders, without building an event.
        with self._lock:
            c = self._metrics.counters
            for f, n in fields.items():
                key = f"serve.worker.{index}.{f}"
                c[key] = c.get(key, 0) + n

    def _serve_check_batch(
        self, index: int, rel: str, fuel: int, items: list
    ) -> None:
        t0 = monotonic()
        n = len(items)
        tel = self.telemetry
        try:
            checker = derive_checker(self.ctx, rel)
            batch_fn = getattr(checker, "check_batch", None)
            if batch_fn is None:
                results = [
                    checker.check(fuel, tuple(t.query.args)) for t in items
                ]
            else:
                results = batch_fn(fuel, [tuple(t.query.args) for t in items])
        except ReproError as e:
            # A derive/schedule failure is shared by the whole group —
            # every query of this shape errors identically.
            elapsed = (monotonic() - t0) / n
            if tel is not None:
                tel.record_batch(
                    kind="check", rel=rel, worker=index,
                    entries=[(t.qid, t0 - t.submitted) for t in items],
                    service_seconds=elapsed,
                    statuses=["error"] * n,
                    reasons=[None] * n,
                )
                with self._lock:
                    c = self._metrics.counters
                    key = f"serve.worker.{index}.errors"
                    c[key] = c.get(key, 0) + n
            else:
                self._bump(index, queries=n, errors=n)
            for t in items:
                t.future.set_result(
                    QueryResult(
                        t.query, "error", error=str(e),
                        elapsed_seconds=elapsed, worker=index,
                        qid=t.qid, queue_seconds=t0 - t.submitted,
                    )
                )
            return
        except Exception:
            # Anything else is one bad query's problem, not the
            # group's: isolate by re-serving each singly (the single
            # path errors the culprit and answers its neighbors).
            for t in items:
                t.future.set_result(self._serve_one(index, t))
            return
        elapsed = (monotonic() - t0) / n
        out = []
        for t, res in zip(items, results):
            if res is NONE_OB:
                result = QueryResult(
                    t.query, "gave_up", give_up=GiveUp("fuel"),
                    elapsed_seconds=elapsed, worker=index, batched=True,
                    qid=t.qid, queue_seconds=t0 - t.submitted,
                )
            else:
                result = QueryResult(
                    t.query, "ok", value=res is SOME_TRUE,
                    elapsed_seconds=elapsed, worker=index, batched=True,
                    qid=t.qid, queue_seconds=t0 - t.submitted,
                )
            out.append((t.future, result))
        if tel is not None:
            tel.record_batch(
                kind="check", rel=rel, worker=index,
                entries=[(t.qid, t0 - t.submitted) for t in items],
                service_seconds=elapsed,
                statuses=[r.status for _, r in out],
                reasons=[
                    r.give_up.reason if r.give_up is not None else None
                    for _, r in out
                ],
            )
        else:
            gave_up = sum(1 for _, r in out if r.status == "gave_up")
            self._bump(index, queries=n, batched=n, gave_up=gave_up)
        ctl = self._overload
        if ctl is not None:
            self._note_level(ctl.observe(self._queue.qsize(), elapsed))
        for fut, result in out:
            fut.set_result(result)

    def _limits(self, query, remaining: "float | None" = None) -> dict:
        """The effective budget limits for *query* (empty = none).

        A query's own limits are sacred; the engine *defaults* scale
        down under the overload ladder's TIGHTEN.  *remaining* (the
        ticket's time to deadline) caps the deadline budget — an
        executing query gets only the time it has left, not its
        original allotment.
        """
        out = {}
        ctl = self._overload
        scale = ctl.budget_scale() if ctl is not None else 1.0
        if query.max_ops is not None:
            out["max_ops"] = query.max_ops
        elif self.max_ops is not None:
            out["max_ops"] = max(1, int(self.max_ops * scale))
        if query.deadline_seconds is not None:
            deadline = query.deadline_seconds
        elif self.deadline_seconds is not None:
            deadline = self.deadline_seconds * scale
        else:
            deadline = None
        if remaining is not None:
            deadline = remaining if deadline is None else min(
                deadline, remaining
            )
        if deadline is not None:
            out["deadline_seconds"] = max(deadline, 1e-6)
        return out

    def _run_limited(
        self, query, remaining: "float | None" = None
    ) -> QueryResult:
        limits = self._limits(query, remaining)
        if not limits:
            return self._execute(query)
        with budget_scope(self.ctx, **limits) as bud:
            result = self._execute(query)
        if bud.exhausted is not None and (
            result.status == "gave_up" or result.complete is False
        ):
            # The budget (not plain fuel) is what stopped it:
            # surface the structured diagnosis, keeping any
            # partial enum answer found before the trip.
            result = QueryResult(
                query,
                "gave_up",
                value=result.value,
                complete=False if result.complete is not None else None,
                give_up=GiveUp(
                    getattr(bud.exhausted, "limit", "budget"),
                    exhausted=bud.exhausted,
                ),
                seed=result.seed,
            )
        return result

    def _serve_one(self, index: int, ticket: Ticket) -> QueryResult:
        tel = self.telemetry
        query = ticket.query
        qid = ticket.qid
        kind = _KINDS.get(type(query).__name__, "?")
        t0 = monotonic()
        queue_s = t0 - ticket.submitted
        remaining = ticket.remaining(t0)
        spans = None
        try:
            if ticket.fault == "poison":
                raise RuntimeError("injected poison query")
            if tel is not None and tel.should_trace(qid, kind, query.rel):
                from ..observe import observe

                with observe(self.ctx, span_cap=tel.span_cap) as obs:
                    result = self._run_limited(query, remaining)
                spans = [s.as_dict() for s in obs.spans]
            else:
                result = self._run_limited(query, remaining)
        except ReproError as e:
            result = QueryResult(query, "error", error=str(e))
        except Exception as e:
            # Per-query isolation: a raise inside one query's execution
            # is that query's error, never its neighbors' or the
            # worker's.  (Real crashes — BaseException — still
            # propagate to the worker's crash handler.)
            result = QueryResult(
                query, "error", error=f"query execution failed: {e!r}"
            )
        result.elapsed_seconds = monotonic() - t0
        result.worker = index
        result.qid = qid
        result.queue_seconds = queue_s
        brk = self._breaker
        if brk is not None:
            brk.record(
                (kind, getattr(query, "rel", "?")),
                result.give_up is not None
                and result.give_up.exhausted is not None,
            )
        ctl = self._overload
        if ctl is not None:
            self._note_level(
                ctl.observe(self._queue.qsize(), result.elapsed_seconds)
            )
        if tel is not None:
            tel.record_query(
                qid=qid,
                kind=kind,
                rel=getattr(query, "rel", "?"),
                mode=getattr(query, "mode", ""),
                status=result.status,
                reason=(
                    result.give_up.reason
                    if result.give_up is not None
                    else None
                ),
                worker=index,
                queue_seconds=queue_s,
                service_seconds=result.elapsed_seconds,
                batch=1,
                spans=spans,
            )
        elif result.status == "gave_up":
            self._bump(index, queries=1, gave_up=1)
        elif result.status == "error":
            self._bump(index, queries=1, errors=1)
        else:
            self._bump(index, queries=1)
        return result

    def _execute(self, query) -> QueryResult:
        ctx = self.ctx
        if isinstance(query, CheckQuery):
            checker = derive_checker(ctx, query.rel)
            res = checker.check(query.fuel, tuple(query.args))
            if res is NONE_OB:
                return QueryResult(query, "gave_up", give_up=GiveUp("fuel"))
            return QueryResult(query, "ok", value=res is SOME_TRUE)
        if isinstance(query, EnumQuery):
            enum = derive_enumerator(ctx, query.rel, query.mode)
            values: list = []
            saw_fuel = truncated = False
            try:
                for x in enum.enum_st(query.fuel, tuple(query.ins)):
                    if x is OUT_OF_FUEL:
                        saw_fuel = True
                        continue
                    values.append(x)
                    if (
                        query.max_values is not None
                        and len(values) >= query.max_values
                    ):
                        truncated = True
                        break
            except Exception as e:
                # Mid-stream failure: the values found before the
                # raise are still a sound partial answer — keep them.
                msg = (
                    str(e) if isinstance(e, ReproError)
                    else f"query execution failed: {e!r}"
                )
                return QueryResult(
                    query, "error", error=msg, value=values, complete=False
                )
            complete = not saw_fuel and not truncated
            if saw_fuel and not values:
                return QueryResult(
                    query, "gave_up", value=values, complete=False,
                    give_up=GiveUp("fuel"),
                )
            return QueryResult(query, "ok", value=values, complete=complete)
        if isinstance(query, GenQuery):
            gen = derive_generator(ctx, query.rel, query.mode)
            seed = (
                query.seed
                if query.seed is not None
                else _SEED_SOURCE.randrange(2**63)
            )
            try:
                res = gen.gen_st(
                    query.fuel, tuple(query.ins), random.Random(seed)
                )
            except Exception as e:
                # The seed makes even a crash replayable:
                # GenQuery(..., seed=result.seed) reruns the draw.
                msg = (
                    str(e) if isinstance(e, ReproError)
                    else f"query execution failed: {e!r}"
                )
                return QueryResult(query, "error", error=msg, seed=seed)
            if res is OUT_OF_FUEL:
                return QueryResult(
                    query, "gave_up", give_up=GiveUp("fuel"), seed=seed
                )
            if res is FAIL:
                return QueryResult(
                    query, "gave_up", give_up=GiveUp("retries"), seed=seed
                )
            return QueryResult(query, "ok", value=res, seed=seed)
        return QueryResult(
            query, "error", error=f"unknown query type {type(query).__name__}"
        )
