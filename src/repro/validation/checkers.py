"""Translation validation of derived checkers (Sections 5.2.1–5.2.2).

``certify_checker`` discharges, for one checker instance, the four
checker obligations of Section 5.1 against the reference proof search.
The fuel ladder doubles up to ``max_fuel``, so monotonicity is checked
along real chains and the ∃-fuel searches of completeness terminate.

The structural walk of the Ltac2 scripts — case analysis on pattern
matching, checker matching (plain and negated), recursive calls, and
enumeration — appears here as the ``step_cases`` census over the
schedule: every construct kind the proof scripts must handle is
recorded, and any unknown construct fails certification outright.
"""

from __future__ import annotations

from ..core.context import Context
from ..semantics.proof_search import SearchConfig, derivable
from ..derive.instances import CHECKER, Instance, resolve_checker
from ..derive.schedule import (
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)
from ..derive.scheduler import required_instances
from .domains import argument_tuples
from .obligations import (
    DEFAULT_CONFIG,
    Certificate,
    ObligationResult,
    ValidationConfig,
)

_STEP_NAMES = {
    SCheckCall: "checker-matching",
    SRecCheck: "recursive-call",
    SEqCheck: "equality-check",
    SAssign: "assignment",
    SMatch: "pattern-matching",
    SProduce: "enumeration",
    SInstantiate: "instantiation",
}


def census(schedule: Schedule) -> dict[str, int]:
    """Count schedule constructs by proof-case kind (and split the
    negated checker-matching case out, as Section 5.2 does)."""
    counts: dict[str, int] = {"top-level-match": len(schedule.handlers)}
    for handler in schedule.handlers:
        for step in handler.steps:
            name = _STEP_NAMES[type(step)]
            if isinstance(step, SCheckCall) and step.negated:
                name = "checker-matching-negated"
            counts[name] = counts.get(name, 0) + 1
    return counts


def _fuel_ladder(max_fuel: int) -> list[int]:
    fuels = [0, 1]
    f = 2
    while f < max_fuel:
        fuels.append(f)
        f *= 2
    fuels.append(max_fuel)
    return fuels


def certify_checker(
    ctx: Context,
    rel_name: str,
    cfg: ValidationConfig = DEFAULT_CONFIG,
    instance: Instance | None = None,
) -> Certificate:
    """Validate a checker for *rel_name* (deriving it if necessary)."""
    if instance is None:
        instance = resolve_checker(ctx, rel_name)
    rel = ctx.relations.get(rel_name)
    cert = Certificate(rel=rel_name, mode="i" * rel.arity, kind="checker")
    if instance.schedule is not None:
        cert.step_cases = census(instance.schedule)
        cert.dependencies = [
            (k, r, str(m) if m is not None else "i" * ctx.relations.get(r).arity)
            for k, r, m in required_instances(instance.schedule)
        ]

    domain = argument_tuples(ctx, rel, cfg)
    fuels = _fuel_ladder(cfg.max_fuel)
    search_cfg = SearchConfig(enum_depth=cfg.domain_depth + 2)

    sound = ObligationResult("soundness", "proved")
    complete = ObligationResult("completeness", "proved")
    monotone = ObligationResult("monotonicity", "proved")
    neg_sound = ObligationResult("negation-soundness", "proved")

    skipped = 0
    for args in domain:
        try:
            truth = derivable(ctx, rel_name, args, cfg.ref_depth, search_cfg)
        except Exception:  # node budget / floundering: skip this tuple
            skipped += 1
            continue
        results = [instance.fn(f, args) for f in fuels]

        decided = None
        for f, r in zip(fuels, results):
            if decided is not None and not r.is_none and r is not decided:
                monotone.status = "refuted"
                monotone.counterexample = (args, f, decided, r)
            if decided is None and not r.is_none:
                decided = r
            if r.is_true:
                sound.cases += 1
                if not truth:
                    try:
                        deeper = derivable(
                            ctx, rel_name, args, 2 * cfg.ref_depth, search_cfg
                        )
                    except Exception:
                        deeper = True  # budget: cannot refute
                    if not deeper:
                        sound.status = "refuted"
                        sound.counterexample = (args, f)
            if r.is_false:
                neg_sound.cases += 1
                if truth:
                    neg_sound.status = "refuted"
                    neg_sound.counterexample = (args, f)
            monotone.cases += 1

        if truth:
            complete.cases += 1
            if not any(r.is_true for r in results):
                # ∃-fuel obligation: retry once with much more fuel
                # before declaring refutation.
                if not instance.fn(4 * cfg.max_fuel, args).is_true:
                    complete.status = "refuted"
                    complete.counterexample = (args, 4 * cfg.max_fuel)

    detail = f"{len(domain)} argument tuples, fuels {fuels}"
    if skipped:
        detail += f" ({skipped} skipped: reference budget)"
    for ob in (sound, complete, monotone, neg_sound):
        ob.detail = detail
        cert.obligations.append(ob)
    return cert
