"""Proof by computational reflection (Section 6.3).

The paper's showcase: proving ``Sorted (repeat 1 2000)`` by repeatedly
applying constructors builds a proof term with thousands of nodes
(slow to build, slow to re-check); applying the derived checker's
soundness theorem and *computing* replaces all of it with one checker
run.

The analogue here:

* the **explicit** route builds a full :class:`Derivation` tree via
  directed constructor application and re-checks it node by node
  (:func:`prove_explicit`) — the "repeat eapply; Qed" cost model;
* the **reflective** route runs the derived checker once and cites its
  soundness certificate (:func:`prove_by_reflection`) — the
  "eapply sound; compute; reflexivity" cost model.

Both return a :class:`ProofReport` with sizes and timings so the
benchmark can reproduce the paper's contrast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.context import Context
from ..core.errors import ValidationError
from ..core.values import Value
from ..derive.instances import resolve_checker
from ..semantics.derivation import Derivation, check_derivation
from ..semantics.proof_search import SearchConfig, search_derivation


@dataclass(frozen=True)
class ProofReport:
    """Outcome of one proving strategy."""

    method: str  # 'explicit' | 'reflective'
    goal: str
    proved: bool
    proof_size: int  # rule applications (explicit) or 1 (reflective)
    build_seconds: float
    check_seconds: float

    def __str__(self) -> str:
        status = "proved" if self.proved else "FAILED"
        return (
            f"{self.method:10s} {self.goal}: {status}; proof size "
            f"{self.proof_size}; build {self.build_seconds:.4f}s, "
            f"check {self.check_seconds:.4f}s"
        )


def prove_explicit(
    ctx: Context,
    rel_name: str,
    args: tuple[Value, ...],
    depth: int,
    cfg: SearchConfig | None = None,
) -> ProofReport:
    """Build an explicit derivation tree and check it — the proof-term
    route the paper times at 11.2 s + 16.3 s for ``sorted_2000``."""
    goal = f"{rel_name}({', '.join(str(a) for a in args)[:40]}…)"
    start = time.perf_counter()
    tree = search_derivation(ctx, rel_name, args, depth, cfg or SearchConfig())
    build = time.perf_counter() - start
    if tree is None:
        return ProofReport("explicit", goal, False, 0, build, 0.0)
    start = time.perf_counter()
    try:
        check_derivation(ctx, tree)
        proved = True
    except ValidationError:
        proved = False
    check = time.perf_counter() - start
    return ProofReport("explicit", goal, proved, tree.size(), build, check)


def prove_by_reflection(
    ctx: Context,
    rel_name: str,
    args: tuple[Value, ...],
    fuel: int,
) -> ProofReport:
    """Run the derived checker once; the soundness obligation (checked
    separately, once per checker) justifies concluding the relation —
    ``eapply sound with (s := fuel); compute; reflexivity``."""
    goal = f"{rel_name}({', '.join(str(a) for a in args)[:40]}…)"
    instance = resolve_checker(ctx, rel_name)
    start = time.perf_counter()
    result = instance.fn(fuel, args)
    build = time.perf_counter() - start
    # "Typechecking" the reflective proof re-runs the computation (the
    # kernel reduces the same term at Qed time).
    start = time.perf_counter()
    again = instance.fn(fuel, args)
    check = time.perf_counter() - start
    proved = result.is_true and again.is_true
    return ProofReport("reflective", goal, proved, 1, build, check)


def reflect_holds(
    ctx: Context, rel_name: str, args: tuple[Value, ...], fuel: int
) -> bool:
    """Convenience: the reflective judgment itself."""
    return resolve_checker(ctx, rel_name).fn(fuel, args).is_true
