"""Translation validation of derived producers (Section 5.1/5.2).

For enumerators the obligations are discharged *exactly*: soundness of
every produced value, completeness against the reference witness set,
size-monotonicity of the outcome sets, and honesty of the fuel marker
(an enumeration without ``OUT_OF_FUEL`` must already equal the full
witness set — this is the property that lets checkers answer a
definitive ``Some false`` after a failed existential search).

Generators share their schedule with enumerators, so their possibilistic
semantics coincide by construction; we still validate them directly:
soundness on every sampled value, and statistical completeness
(coverage of small witness sets within a sample budget).
"""

from __future__ import annotations

import random

from ..core.context import Context
from ..core.terms import Var, value_to_term
from ..core.values import Value
from ..derive.instances import ENUM, GEN, Instance, resolve
from ..derive.modes import Mode
from ..derive.scheduler import required_instances
from ..producers.outcome import OUT_OF_FUEL, is_value
from ..semantics.proof_search import FlounderError, SearchConfig, derivable, solutions
from .checkers import _fuel_ladder, census
from .domains import input_tuples
from .obligations import (
    DEFAULT_CONFIG,
    Certificate,
    ObligationResult,
    ValidationConfig,
)


def _full_args(
    mode: Mode, ins: tuple[Value, ...], outs: tuple[Value, ...]
) -> tuple[Value, ...]:
    args: list[Value | None] = [None] * mode.arity
    for pos, v in zip(mode.ins, ins):
        args[pos] = v
    for pos, v in zip(mode.out_list, outs):
        args[pos] = v
    assert all(a is not None for a in args)
    return tuple(args)  # type: ignore[arg-type]


def _reference_witnesses(
    ctx: Context,
    rel_name: str,
    mode: Mode,
    ins: tuple[Value, ...],
    cfg: ValidationConfig,
    limit: int = 200,
) -> list[tuple[Value, ...]] | None:
    """The set of output tuples the relation admits for these inputs
    (None when the reference search flounders)."""
    goal: list = [None] * mode.arity
    for pos, v in zip(mode.ins, ins):
        goal[pos] = value_to_term(v)
    names = []
    for pos in mode.out_list:
        name = f"__o{pos}"
        names.append(name)
        goal[pos] = Var(name)
    try:
        found = solutions(
            ctx,
            rel_name,
            tuple(goal),
            depth=cfg.ref_depth,
            cfg=SearchConfig(enum_depth=cfg.domain_depth + 2),
            limit=limit,
        )
    except FlounderError:
        return None
    return [tuple(w[n] for n in names) for w in found]


def _run_enum(
    instance: Instance, fuel: int, ins: tuple[Value, ...], cap: int
):
    """Collect up to *cap* outcomes; ``truncated`` means the
    enumeration was cut short (so absence of a value proves nothing)."""
    outcomes: set[tuple[Value, ...]] = set()
    exhausted = True
    truncated = False
    for item in instance.fn(fuel, ins):
        if item is OUT_OF_FUEL:
            exhausted = False
        else:
            outcomes.add(item)
            if len(outcomes) >= cap:
                truncated = True
                exhausted = False
                break
    return outcomes, exhausted, truncated


def certify_enumerator(
    ctx: Context,
    rel_name: str,
    mode: "Mode | str",
    cfg: ValidationConfig = DEFAULT_CONFIG,
    instance: Instance | None = None,
) -> Certificate:
    if isinstance(mode, str):
        mode = Mode.from_string(mode)
    if instance is None:
        instance = resolve(ctx, ENUM, rel_name, mode)
    rel = ctx.relations.get(rel_name)
    cert = Certificate(rel=rel_name, mode=str(mode), kind="enum")
    if instance.schedule is not None:
        cert.step_cases = census(instance.schedule)
        cert.dependencies = [
            (k, r, str(m) if m is not None else "i" * ctx.relations.get(r).arity)
            for k, r, m in required_instances(instance.schedule)
        ]

    domain = input_tuples(ctx, rel, mode.ins, cfg)
    fuels = _fuel_ladder(cfg.max_fuel)

    sound = ObligationResult("soundness", "proved")
    complete = ObligationResult("completeness", "proved")
    monotone = ObligationResult("size-monotonicity", "proved")
    honest = ObligationResult("fuel-marker-honesty", "proved")
    typed = ObligationResult("well-typed-outputs", "proved")
    search_cfg = SearchConfig(enum_depth=cfg.domain_depth + 2)

    for ins in domain:
        previous: set[tuple[Value, ...]] | None = None
        last_outcomes: set[tuple[Value, ...]] = set()
        last_truncated = False
        exhausted_at: int | None = None
        checked: set[tuple[Value, ...]] = set()
        for f in fuels:
            outcomes, exhausted, truncated = _run_enum(
                instance, f, ins, cfg.max_outcomes
            )
            if previous is not None and not truncated:
                monotone.cases += 1
                if not previous <= outcomes:
                    monotone.status = "refuted"
                    monotone.counterexample = (ins, f, previous - outcomes)
            previous = None if truncated else outcomes
            last_outcomes = outcomes
            last_truncated = truncated
            if exhausted and exhausted_at is None:
                exhausted_at = f
            for outs in outcomes:
                if outs in checked:
                    continue
                checked.add(outs)
                sound.cases += 1
                args = _full_args(mode, ins, outs)
                try:
                    ok = derivable(
                        ctx, rel_name, args, cfg.ref_depth, search_cfg
                    ) or derivable(
                        ctx, rel_name, args, 2 * cfg.ref_depth, search_cfg
                    )
                except Exception:
                    ok = True  # reference budget: cannot refute
                if not ok:
                    sound.status = "refuted"
                    sound.counterexample = (ins, outs, f)
                for v, ty in zip(outs, instance.schedule.out_types if instance.schedule else ()):
                    typed.cases += 1
                    if not ctx.datatypes.check_value(v, ty):
                        typed.status = "refuted"
                        typed.counterexample = (ins, v, ty)

        witnesses = _reference_witnesses(ctx, rel_name, mode, ins, cfg)
        if witnesses is None:
            if complete.status == "proved" and not complete.detail:
                complete.detail = "some inputs skipped (reference floundered)"
            continue
        # A value produced at fuel f has constructor depth at most
        # f + 1, so deeper reference witnesses are out of reach *by
        # construction*, not by incompleteness: restrict the obligation
        # to witnesses the fuel budget can express.
        witnesses = [
            w
            for w in witnesses
            if all(v.depth() <= cfg.max_fuel + 1 for v in w)
        ]
        missing = [o for o in witnesses if o not in last_outcomes]
        complete.cases += len(witnesses)
        if missing and last_truncated:
            # Absence from a truncated enumeration proves nothing.
            if complete.status == "proved":
                complete.status = "inconclusive"
                complete.detail = "enumeration truncated by max_outcomes"
        elif missing:
            # The obligation is ∃s — retry with a much larger fuel
            # before declaring refutation (witnesses found by the
            # reference search can simply be deep).
            bigger, _, big_trunc = _run_enum(
                instance, 4 * cfg.max_fuel, ins, 4 * cfg.max_outcomes
            )
            for outs in missing:
                if outs in bigger:
                    continue
                if big_trunc:
                    if complete.status == "proved":
                        complete.status = "inconclusive"
                        complete.detail = "retry enumeration truncated"
                else:
                    complete.status = "refuted"
                    complete.counterexample = (ins, outs, 4 * cfg.max_fuel)
        if exhausted_at is not None:
            # No fuel marker ⇒ the enumeration claims exhaustiveness:
            # every reference witness must already be present.  (Extra
            # outcomes would be a soundness failure, checked above.)
            honest.cases += 1
            reference = set(witnesses)
            if len(reference) < 200 and not reference <= last_outcomes:
                honest.status = "refuted"
                honest.counterexample = (
                    ins,
                    sorted(map(str, reference - last_outcomes))[:5],
                )

    detail = f"{len(domain)} input tuples, fuels {fuels}"
    for ob in (sound, complete, monotone, honest, typed):
        ob.detail = ob.detail or detail
        cert.obligations.append(ob)
    return cert


def certify_generator(
    ctx: Context,
    rel_name: str,
    mode: "Mode | str",
    cfg: ValidationConfig = DEFAULT_CONFIG,
    instance: Instance | None = None,
) -> Certificate:
    if isinstance(mode, str):
        mode = Mode.from_string(mode)
    if instance is None:
        instance = resolve(ctx, GEN, rel_name, mode)
    rel = ctx.relations.get(rel_name)
    cert = Certificate(rel=rel_name, mode=str(mode), kind="gen")
    if instance.schedule is not None:
        cert.step_cases = census(instance.schedule)

    domain = input_tuples(ctx, rel, mode.ins, cfg)
    # Sampling is slow; keep the domain tight for generators.
    domain = domain[: max(10, cfg.max_tuples // 20)]

    sound = ObligationResult("soundness", "proved")
    complete = ObligationResult("statistical-completeness", "proved")
    search_cfg = SearchConfig(enum_depth=cfg.domain_depth + 2)
    rng = random.Random(cfg.seed)

    for ins in domain:
        seen: set[tuple[Value, ...]] = set()
        for _ in range(cfg.gen_samples):
            item = instance.fn(cfg.max_fuel, ins, rng)
            if not is_value(item):
                continue
            sound.cases += 1
            seen.add(item)
            args = _full_args(mode, ins, item)
            try:
                ok = derivable(
                    ctx, rel_name, args, cfg.ref_depth, search_cfg
                ) or derivable(
                    ctx, rel_name, args, 2 * cfg.ref_depth, search_cfg
                )
            except Exception:
                ok = True  # reference budget: cannot refute
            if not ok:
                sound.status = "refuted"
                sound.counterexample = (ins, item)

        witnesses = _reference_witnesses(ctx, rel_name, mode, ins, cfg, limit=6)
        if witnesses is None or len(witnesses) >= 6:
            continue  # too many witnesses for statistical coverage
        for outs in witnesses:
            complete.cases += 1
            if outs not in seen:
                complete.status = "inconclusive"
                complete.detail = (
                    f"witness {tuple(map(str, outs))} for input "
                    f"{tuple(map(str, ins))} never sampled in "
                    f"{cfg.gen_samples} draws"
                )

    sound.detail = f"{len(domain)} inputs × {cfg.gen_samples} samples"
    complete.detail = complete.detail or "small witness sets fully covered"
    cert.obligations.append(sound)
    cert.obligations.append(complete)
    return cert
