"""Test-domain construction for validation.

Obligations are universally quantified over relation arguments; we
discharge them on a *bounded-exhaustive core* (every argument tuple up
to a constructor depth, capped), topped up with:

* reference-derived **positives** — for sparse relations (e.g. STLC
  typing) random or small tuples rarely satisfy the relation, so we ask
  the reference search to solve the fully open goal and include its
  witnesses; and
* **random tuples** from the unconstrained generator, for spot
  coverage beyond the exhaustive depth.
"""

from __future__ import annotations

import itertools
import random

from ..core.context import Context
from ..core.relations import Relation
from ..core.terms import Var
from ..core.values import Value
from ..producers.combinators import _enum_values, _gen_value
from ..producers.outcome import is_value
from ..semantics.proof_search import FlounderError, SearchConfig, solutions
from .obligations import ValidationConfig


def exhaustive_tuples(
    ctx: Context, rel: Relation, cfg: ValidationConfig
) -> list[tuple[Value, ...]]:
    """Bounded-exhaustive argument tuples (capped at ``max_tuples``)."""
    per_arg = [
        list(itertools.islice(_enum_values(ctx, t, cfg.domain_depth), 64))
        for t in rel.arg_types
    ]
    product = itertools.product(*per_arg)
    return list(itertools.islice(product, cfg.max_tuples))


def positive_tuples(
    ctx: Context, rel: Relation, cfg: ValidationConfig, limit: int = 60
) -> list[tuple[Value, ...]]:
    """Argument tuples known-derivable, via the reference search."""
    goal = tuple(Var(f"__a{i}") for i in range(rel.arity))
    search_cfg = SearchConfig(enum_depth=cfg.domain_depth + 1)
    try:
        witnesses = solutions(
            ctx, rel.name, goal, depth=min(cfg.ref_depth, 8),
            cfg=search_cfg, limit=limit,
        )
    except FlounderError:
        return []
    return [
        tuple(w[f"__a{i}"] for i in range(rel.arity)) for w in witnesses
    ]


def random_tuples(
    ctx: Context, rel: Relation, cfg: ValidationConfig, count: int = 60
) -> list[tuple[Value, ...]]:
    rng = random.Random(cfg.seed)
    out: list[tuple[Value, ...]] = []
    for _ in range(count):
        args = []
        for t in rel.arg_types:
            v = _gen_value(ctx, t, cfg.domain_depth + 2, rng)
            if not is_value(v):
                break
            args.append(v)
        else:
            out.append(tuple(args))
    return out


def argument_tuples(
    ctx: Context, rel: Relation, cfg: ValidationConfig
) -> list[tuple[Value, ...]]:
    """The validation domain: exhaustive core + positives + random."""
    seen: set[tuple[Value, ...]] = set()
    out: list[tuple[Value, ...]] = []
    for source in (
        exhaustive_tuples(ctx, rel, cfg),
        positive_tuples(ctx, rel, cfg),
        random_tuples(ctx, rel, cfg),
    ):
        for args in source:
            if args not in seen:
                seen.add(args)
                out.append(args)
    return out


def input_tuples(
    ctx: Context,
    rel: Relation,
    in_positions: tuple[int, ...],
    cfg: ValidationConfig,
) -> list[tuple[Value, ...]]:
    """Domain for producer inputs: projections of the full domain (so
    positives are well represented) plus the exhaustive product over
    the input types."""
    seen: set[tuple[Value, ...]] = set()
    out: list[tuple[Value, ...]] = []
    for args in argument_tuples(ctx, rel, cfg):
        ins = tuple(args[i] for i in in_positions)
        if ins not in seen:
            seen.add(ins)
            out.append(ins)
    cap = max(1, cfg.max_tuples // 4)
    return out[:cap]
