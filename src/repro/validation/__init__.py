"""Translation validation: certify derived computations (Section 5)."""

from .checkers import census, certify_checker
from .obligations import (
    DEFAULT_CONFIG,
    Certificate,
    ObligationResult,
    ValidationConfig,
)
from .producers import certify_enumerator, certify_generator
from .reflection import ProofReport, prove_by_reflection, prove_explicit, reflect_holds

__all__ = [
    "Certificate",
    "DEFAULT_CONFIG",
    "ObligationResult",
    "ProofReport",
    "ValidationConfig",
    "census",
    "certify_checker",
    "certify_enumerator",
    "certify_generator",
    "prove_by_reflection",
    "prove_explicit",
    "reflect_holds",
]
