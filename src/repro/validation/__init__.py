"""Translation validation: certify derived computations (Section 5).

Certificates are checked against the :class:`~repro.derive.schedule.
Schedule` — the paper-shaped program — not the lowered Plan IR.  That
is deliberate: the schedule sits *upstream* of the single shared
lowering (``lower_schedule``), so one certificate covers every backend
that executes or compiles the plan; there is no separate lowered
artifact to re-validate per backend.
"""

from .checkers import census, certify_checker
from .obligations import (
    DEFAULT_CONFIG,
    Certificate,
    ObligationResult,
    ValidationConfig,
)
from .producers import certify_enumerator, certify_generator
from .reflection import ProofReport, prove_by_reflection, prove_explicit, reflect_holds

__all__ = [
    "Certificate",
    "DEFAULT_CONFIG",
    "ObligationResult",
    "ProofReport",
    "ValidationConfig",
    "census",
    "certify_checker",
    "certify_enumerator",
    "certify_generator",
    "prove_by_reflection",
    "prove_explicit",
    "reflect_holds",
]
