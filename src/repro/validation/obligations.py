"""Formal correctness obligations (Section 5.1).

Each obligation is the *statement* the paper's Ltac2 scripts prove,
reified as an object that can be discharged on bounded domains:

Checkers (``check`` = derived semi-decision procedure for ``P``):

* soundness:        ∀ s, check s (P e…) = Some true  → P e…
* completeness:     P e… → ∃ s, check s (P e…) = Some true
* monotonicity:     s₁ ≤ s₂ → check s₁ = Some b → check s₂ = Some b
* negation sound.:  ∀ s, check s (P e…) = Some false → ¬ P e…
  (derivable from monotonicity + completeness, checked directly here)

Producers (``[prod]ₛ`` = set-of-outcomes at size s, ``[prod]`` = its
union over all s):

* size-monotonicity: s₁ ≤ s₂ → [prod]ₛ₁ ⊆ [prod]ₛ₂
* soundness:         x ∈ [prod]   → P … x …
* completeness:      P … x …     → x ∈ [prod]

"P e…" is judged by the reference proof search
(:mod:`repro.semantics.proof_search`), so each discharge is an honest
two-sided comparison between the derived computation and an
independent semantics — the translation-validation analogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ValidationConfig:
    """Budgets for discharging obligations.

    ``domain_depth`` bounds the constructor depth of exhaustively
    enumerated argument tuples; ``max_tuples`` caps how many are
    tested; ``ref_depth`` is the reference-search derivation-height
    budget used to judge ground truth; ``max_fuel`` bounds the ∃s
    searches; ``gen_samples`` is the per-input sample count used for
    the statistical generator checks; ``max_outcomes`` caps how much
    of any single enumeration is examined (obligations whose discharge
    would need the truncated tail are reported inconclusive, never
    refuted).
    """

    domain_depth: int = 3
    max_tuples: int = 400
    ref_depth: int = 16
    max_fuel: int = 24
    gen_samples: int = 200
    max_outcomes: int = 600
    seed: int = 2022


DEFAULT_CONFIG = ValidationConfig()


@dataclass
class ObligationResult:
    """The outcome of discharging one obligation."""

    name: str
    status: str  # 'proved' | 'refuted' | 'inconclusive' | 'assumed'
    cases: int = 0
    detail: str = ""
    counterexample: Any = None

    @property
    def ok(self) -> bool:
        return self.status in ("proved", "assumed")

    def __str__(self) -> str:
        body = f"{self.name}: {self.status} ({self.cases} cases)"
        if self.detail:
            body += f" — {self.detail}"
        if self.counterexample is not None:
            body += f"; counterexample: {self.counterexample}"
        return body


@dataclass
class Certificate:
    """A per-artifact validation certificate.

    ``step_cases`` records the structural walk over the schedule (one
    entry per construct kind, mirroring the case analysis of the Ltac2
    proof scripts in Section 5.2), ``obligations`` the discharged
    statements, and ``dependencies`` the instances whose own
    certificates this one assumes (the typeclass-resolved obligations
    of Section 5.3).
    """

    rel: str
    mode: str
    kind: str  # 'checker' | 'enum' | 'gen'
    obligations: list[ObligationResult] = field(default_factory=list)
    step_cases: dict[str, int] = field(default_factory=dict)
    dependencies: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.obligations)

    @property
    def refuted(self) -> list[ObligationResult]:
        return [o for o in self.obligations if o.status == "refuted"]

    def summary(self) -> str:
        head = f"certificate {self.kind} {self.rel} [{self.mode}]: "
        head += "OK" if self.ok else "FAILED"
        lines = [head]
        for o in self.obligations:
            lines.append(f"  {o}")
        if self.step_cases:
            cases = ", ".join(f"{k}×{v}" for k, v in sorted(self.step_cases.items()))
            lines.append(f"  structural cases covered: {cases}")
        if self.dependencies:
            deps = ", ".join(f"{k}:{r}[{m}]" for k, r, m in self.dependencies)
            lines.append(f"  assumes: {deps}")
        return "\n".join(lines)
