"""Derivation trees: explicit proof objects for inductive relations.

A :class:`Derivation` witnesses ``P v1 .. vn`` the way a Coq proof term
does: it names the rule used, gives values for the rule's universally
quantified variables, and carries sub-derivations for the rule's
relational premises.  :func:`check_derivation` is the proof checker —
the analogue of Coq's kernel typechecking a proof term, and the
baseline against which proof by reflection is measured (Section 6.3).

Negated premises cannot be witnessed by a finite tree; they are
verified at checking time by bounded refutation through the reference
proof search (the checker takes a ``neg_depth`` budget and reports
``None``/unknown if refutation is inconclusive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.context import Context
from ..core.errors import ValidationError
from ..core.relations import EqPremise, Relation, RelPremise
from ..core.terms import evaluate, try_evaluate
from ..core.values import Value


@dataclass(frozen=True)
class Derivation:
    """A proof tree for ``rel v1 .. vn``."""

    rel: str
    rule: str
    # Values for every universally quantified variable of the rule.
    binding: Mapping[str, Value]
    # One sub-derivation per (non-negated) relational premise, in order.
    premises: tuple["Derivation", ...] = ()

    def size(self) -> int:
        """Number of rule applications — the "proof term size" metric
        of the reflection benchmark."""
        return 1 + sum(p.size() for p in self.premises)

    def height(self) -> int:
        if not self.premises:
            return 1
        return 1 + max(p.height() for p in self.premises)

    def conclusion_values(self, ctx: Context) -> tuple[Value, ...]:
        rel = ctx.relations.get(self.rel)
        rule = rel.rule(self.rule)
        return tuple(evaluate(t, self.binding, ctx) for t in rule.conclusion)

    def __str__(self) -> str:
        return self._render(0)

    def _render(self, indent: int) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.rel}.{self.rule}"]
        for p in self.premises:
            lines.append(p._render(indent + 1))
        return "\n".join(lines)


def check_derivation(
    ctx: Context,
    tree: Derivation,
    expected: tuple[Value, ...] | None = None,
    neg_depth: int = 32,
) -> bool:
    """Check that *tree* is a well-formed derivation (optionally of the
    given *expected* conclusion).

    Raises :class:`ValidationError` with a description of the first
    defect; returns True otherwise.  Negated relational premises are
    discharged by bounded refutation with budget *neg_depth*.
    """
    rel = ctx.relations.get(tree.rel)
    rule = rel.rule(tree.rule)

    missing = rule.variables() - set(tree.binding)
    if missing:
        raise ValidationError(
            f"{tree.rel}.{tree.rule}: binding misses variables {sorted(missing)}"
        )

    conclusion = tuple(evaluate(t, tree.binding, ctx) for t in rule.conclusion)
    if expected is not None and conclusion != expected:
        raise ValidationError(
            f"{tree.rel}.{tree.rule}: concludes {conclusion}, expected {expected}"
        )

    positive = [
        p for p in rule.premises if isinstance(p, RelPremise) and not p.negated
    ]
    if len(positive) != len(tree.premises):
        raise ValidationError(
            f"{tree.rel}.{tree.rule}: {len(tree.premises)} sub-derivations for "
            f"{len(positive)} positive relational premises"
        )

    sub_iter = iter(tree.premises)
    for premise in rule.premises:
        if isinstance(premise, EqPremise):
            lhs = try_evaluate(premise.lhs, tree.binding, ctx)
            rhs = try_evaluate(premise.rhs, tree.binding, ctx)
            if lhs is None or rhs is None:
                raise ValidationError(
                    f"{tree.rel}.{tree.rule}: equality premise {premise} "
                    "does not evaluate"
                )
            holds = lhs == rhs
            if holds == premise.negated:
                raise ValidationError(
                    f"{tree.rel}.{tree.rule}: equality premise {premise} "
                    f"fails ({lhs} vs {rhs})"
                )
            continue
        args = tuple(evaluate(t, tree.binding, ctx) for t in premise.args)
        if premise.negated:
            from .proof_search import derivable

            if derivable(ctx, premise.rel, args, neg_depth):
                raise ValidationError(
                    f"{tree.rel}.{tree.rule}: negated premise {premise} "
                    "is actually derivable"
                )
            continue
        sub = next(sub_iter)
        if sub.rel != premise.rel:
            raise ValidationError(
                f"{tree.rel}.{tree.rule}: sub-derivation proves {sub.rel!r}, "
                f"premise needs {premise.rel!r}"
            )
        check_derivation(ctx, sub, expected=args, neg_depth=neg_depth)
    return True


def build_derivation(
    ctx: Context, rel_name: str, args: tuple[Value, ...], depth: int
) -> Derivation | None:
    """Construct a derivation of ``rel args`` of height at most
    *depth* via the reference proof search, or ``None``."""
    from .proof_search import search_derivation

    return search_derivation(ctx, rel_name, args, depth)
