"""Reference semantics: derivation trees and bounded proof search."""

from .derivation import Derivation, build_derivation, check_derivation
from .proof_search import (
    FlounderError,
    SearchConfig,
    derivable,
    search_derivation,
    solutions,
)

__all__ = [
    "Derivation",
    "FlounderError",
    "SearchConfig",
    "build_derivation",
    "check_derivation",
    "derivable",
    "search_derivation",
    "solutions",
]
