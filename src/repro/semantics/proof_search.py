"""Bounded reference proof search — the ground-truth semantics.

Translation validation (Section 5) needs an independent notion of when
``P v1 .. vn`` *holds*.  In Coq that notion is the logic itself; here
it is a bounded logic-programming engine over the declared rules:

    derivable(ctx, P, args, depth)  ⟺  some derivation tree of height
                                        ≤ depth concludes P args

The engine is an SLD-style resolution procedure with three refinements
that make it a usable ground truth for the whole corpus:

* **Function calls** are evaluated as soon as their arguments are
  ground (rules are normalized first, so conclusions are patterns).
* **Floundering premises** (whose unification or evaluation must wait
  for other premises to bind variables) are deferred and retried; if
  premises still flounder once everything else succeeded, the engine
  falls back to *bounded generate-and-test*: it enumerates candidate
  values for an unbound variable (up to ``enum_depth``) and retries.
  Generate-and-test is slow but obviously correct — exactly what a
  reference semantics should be.
* **Negated premises** are discharged by bounded refutation with a
  separate ``neg_depth`` budget (negation-as-failure; sound for the
  decidable relations the corpus negates, mirroring the paper's
  completeness caveat in Section 5.2.2).

Ground queries are memoized per context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.context import Context
from ..core.errors import EvaluationError, ReproError
from ..core.relations import EqPremise, Premise, Relation, RelPremise, Rule
from ..core.terms import Ctor, Fun, Term, Var, term_to_value, value_to_term
from ..core.types import TypeExpr
from ..core.unify import Subst, is_ground_under, resolve, unify, walk
from ..core.values import Value
from .derivation import Derivation


class FlounderError(ReproError):
    """The engine could not schedule a premise even with
    generate-and-test (e.g. an unbound variable of unknown type)."""


@dataclass(frozen=True)
class SearchConfig:
    """Budgets for the reference search.

    ``max_nodes`` bounds the number of rule applications a single
    open-goal query may explore; hitting it stops the search quietly
    (callers treat the witness set as a sound under-approximation).
    """

    neg_depth: int = 24
    enum_depth: int = 6
    max_solutions: int | None = None
    max_nodes: int = 200_000


class _Budget(Exception):
    """Internal: open-goal node budget exhausted."""


_DEFAULT = SearchConfig()


def _normalized(ctx: Context, rel_name: str) -> Relation:
    """The relation with conclusions normalized to linear patterns
    (function calls and repeated variables moved to equality premises)."""
    cache = ctx.artifacts.setdefault("normalized_relations", {})
    if rel_name not in cache:
        from ..derive.preprocess import preprocess_relation

        cache[rel_name] = preprocess_relation(ctx.relations.get(rel_name), ctx)
    return cache[rel_name]


def _eval_open(t: Term, s: Subst, ctx: Context) -> Term:
    """Resolve *t* under *s* and evaluate every function call whose
    arguments became ground.  Raises :class:`EvaluationError` if a
    ground call fails (treated as premise failure by callers)."""
    t = walk(t, s)
    if isinstance(t, Var):
        return t
    new_args = tuple(_eval_open(a, s, ctx) for a in t.args)
    if isinstance(t, Ctor):
        return Ctor(t.name, new_args)
    if all(_term_is_value(a) for a in new_args):
        fn = ctx.functions.require(t.name)
        result = fn.apply(tuple(term_to_value(a) for a in new_args))
        return value_to_term(result)
    return Fun(t.name, new_args)


def _term_is_value(t: Term) -> bool:
    if isinstance(t, Ctor):
        return all(_term_is_value(a) for a in t.args)
    return False


def _has_fun(t: Term) -> bool:
    if isinstance(t, Fun):
        return True
    if isinstance(t, Var):
        return False
    return any(_has_fun(a) for a in t.args)


def _unbound_vars(t: Term, s: Subst) -> list[str]:
    t = walk(t, s)
    if isinstance(t, Var):
        return [t.name]
    out: list[str] = []
    for a in t.args:
        out.extend(_unbound_vars(a, s))
    return out


class _Engine:
    def __init__(self, ctx: Context, cfg: SearchConfig) -> None:
        self.ctx = ctx
        self.cfg = cfg
        self._rename_counter = 0
        self._nodes = 0
        # Ground-query memo: (rel, args, depth) -> Derivation | None
        self.memo: dict = ctx.caches.setdefault("proof_search_memo", {})
        # Positive results, keyed without the depth: (depth_found, tree).
        self.success: dict = ctx.caches.setdefault("proof_search_success", {})

    # -- goals ------------------------------------------------------------------

    def solve_goal(
        self, rel_name: str, args: tuple[Term, ...], s: Subst, depth: int
    ) -> Iterator[tuple[Subst, Derivation]]:
        """Yield (substitution, derivation) pairs proving
        ``rel_name args`` with derivation height ≤ depth."""
        if depth <= 0:
            return
        try:
            args = tuple(_eval_open(a, s, self.ctx) for a in args)
        except EvaluationError:
            return
        if all(_term_is_value(a) for a in args):
            ground = tuple(term_to_value(a) for a in args)
            tree = self.ground_query(rel_name, ground, depth)
            if tree is not None:
                yield s, tree
            return
        rel = _normalized(self.ctx, rel_name)
        for rule in rel.rules:
            yield from self._apply_rule(rel, rule, args, s, depth)

    def ground_query(
        self, rel_name: str, args: tuple[Value, ...], depth: int
    ) -> Derivation | None:
        key = (rel_name, args, depth, self.cfg.enum_depth, self.cfg.neg_depth)
        if key in self.memo:
            return self.memo[key]
        # Fast positive path: a success at a smaller depth is a success
        # here too (monotonicity of derivability in the height bound).
        success_key = (rel_name, args, self.cfg.enum_depth, self.cfg.neg_depth)
        prior = self.success.get(success_key)
        if prior is not None and prior[0] <= depth:
            self.memo[key] = prior[1]
            return prior[1]
        # Mark in-progress to cut cycles at equal depth: a derivation
        # of height ≤ depth cannot pass through the same ground goal
        # with the same remaining height.
        self.memo[key] = None
        result: Derivation | None = None
        rel = _normalized(self.ctx, rel_name)
        arg_terms = tuple(value_to_term(v) for v in args)
        for rule in rel.rules:
            for _s, tree in self._apply_rule(rel, rule, arg_terms, {}, depth):
                result = tree
                break
            if result is not None:
                break
        self.memo[key] = result
        if result is not None:
            best = self.success.get(success_key)
            if best is None or depth < best[0]:
                self.success[success_key] = (depth, result)
        return result

    # -- rules ------------------------------------------------------------------

    def _rename_rule(self, rule: Rule) -> tuple[Rule, dict[str, str]]:
        self._rename_counter += 1
        tag = self._rename_counter
        mapping = {v: f"__{tag}${v}" for v in rule.variables()}
        renamed = rule.subst_terms({v: Var(n) for v, n in mapping.items()})
        return renamed, mapping

    def _apply_rule(
        self,
        rel: Relation,
        rule: Rule,
        args: tuple[Term, ...],
        s: Subst,
        depth: int,
    ) -> Iterator[tuple[Subst, Derivation]]:
        self._nodes += 1
        if self._nodes > self.cfg.max_nodes:
            raise _Budget()
        renamed, mapping = self._rename_rule(rule)
        unified: Subst | None = s
        for goal_arg, pattern in zip(args, renamed.conclusion):
            unified = unify(goal_arg, pattern, unified)
            if unified is None:
                return
        for s2, tagged in self._solve_premises(
            list(renamed.premises), unified, depth - 1, renamed
        ):
            trees = [tree for _idx, tree in sorted(tagged, key=lambda p: p[0])]
            # Variables left unbound by the premises are genuinely
            # unconstrained: *any* well-typed inhabitant witnesses the
            # rule.  Ground them with a default before extracting the
            # binding (skipping them instead would make the reference
            # semantics incomplete).
            s3 = s2
            for orig, fresh in mapping.items():
                if not _term_is_value(_eval_open(Var(fresh), s3, self.ctx)):
                    for name in _unbound_vars(Var(fresh), s3):
                        filler = self._default_inhabitant(
                            renamed, mapping, name
                        )
                        if filler is not None:
                            s3 = dict(s3)
                            s3[name] = value_to_term(filler)
            binding: dict[str, Value] = {}
            complete = True
            for orig, fresh in mapping.items():
                t = _eval_open(Var(fresh), s3, self.ctx)
                if not _term_is_value(t):
                    complete = False
                    break
                binding[orig] = term_to_value(t)
            if not complete:
                continue  # no type information to ground with
            yield s3, Derivation(rel.name, rule.name, binding, tuple(trees))

    def _default_inhabitant(self, rule: Rule, mapping, renamed_name: str):
        """The first enumerable inhabitant of a rule variable's type."""
        orig = renamed_name.split("$", 1)[1] if "$" in renamed_name else renamed_name
        ty = rule.var_types.get(orig)
        if ty is None:
            return None
        from ..producers.combinators import _enum_values

        for size in (0, 1, 2, 4):
            for v in _enum_values(self.ctx, ty, size):
                return v
        return None

    # -- premises ------------------------------------------------------------------

    def _solve_premises(
        self,
        premises: list[Premise],
        s: Subst,
        depth: int,
        rule: Rule,
    ) -> Iterator[tuple[Subst, list[tuple[int, Derivation]]]]:
        indexed = list(enumerate(premises))
        yield from self._solve_seq(indexed, s, depth, rule, deferred_rounds=0)

    def _solve_seq(
        self,
        premises: list[tuple[int, Premise]],
        s: Subst,
        depth: int,
        rule: Rule,
        deferred_rounds: int,
    ) -> Iterator[tuple[Subst, list[tuple[int, Derivation]]]]:
        if not premises:
            yield s, []
            return
        (index, premise), rest = premises[0], premises[1:]

        status = self._premise_status(premise, s)
        if status == "flounder":
            if rest and deferred_rounds < len(premises):
                # Defer: move to the back and try the others first.
                yield from self._solve_seq(
                    rest + [(index, premise)], s, depth, rule, deferred_rounds + 1
                )
                return
            # Generate-and-test fallback.
            yield from self._enumerate_and_retry(
                premise, premises, s, depth, rule
            )
            return

        if isinstance(premise, EqPremise):
            for s2 in self._solve_eq(premise, s):
                for s3, trees in self._solve_seq(rest, s2, depth, rule, 0):
                    yield s3, trees
            return

        if premise.negated:
            try:
                args = tuple(
                    term_to_value(_eval_open(a, s, self.ctx)) for a in premise.args
                )
            except (EvaluationError, ReproError):
                return
            if self.ground_query(premise.rel, args, self.cfg.neg_depth) is None:
                yield from self._solve_seq(rest, s, depth, rule, 0)
            return

        for s2, tree in self.solve_goal(premise.rel, premise.args, s, depth):
            for s3, trees in self._solve_seq(rest, s2, depth, rule, 0):
                yield s3, [(index, tree)] + trees

    def _premise_status(self, premise: Premise, s: Subst) -> str:
        """'ready' when the premise can be attempted now, 'flounder'
        when it must wait for more bindings."""
        if isinstance(premise, EqPremise):
            try:
                lhs = _eval_open(premise.lhs, s, self.ctx)
                rhs = _eval_open(premise.rhs, s, self.ctx)
            except EvaluationError:
                return "ready"  # a failing ground call: fails cleanly
            if _has_fun(lhs) or _has_fun(rhs):
                return "flounder"
            if premise.negated and not (
                _term_is_value(lhs) and _term_is_value(rhs)
            ):
                return "flounder"
            return "ready"
        # Relation application.
        if premise.negated:
            try:
                args = [_eval_open(a, s, self.ctx) for a in premise.args]
            except EvaluationError:
                return "ready"
            if all(_term_is_value(a) for a in args):
                return "ready"
            return "flounder"
        try:
            args = [_eval_open(a, s, self.ctx) for a in premise.args]
        except EvaluationError:
            return "ready"
        if any(_has_fun(a) for a in args):
            return "flounder"
        return "ready"

    def _solve_eq(self, premise: EqPremise, s: Subst) -> Iterator[Subst]:
        try:
            lhs = _eval_open(premise.lhs, s, self.ctx)
            rhs = _eval_open(premise.rhs, s, self.ctx)
        except EvaluationError:
            return
        if premise.negated:
            if _term_is_value(lhs) and _term_is_value(rhs):
                if term_to_value(lhs) != term_to_value(rhs):
                    yield s
            return
        s2 = unify(lhs, rhs, s)
        if s2 is not None:
            yield s2

    # -- generate-and-test fallback ------------------------------------------------

    def _enumerate_and_retry(
        self,
        premise: Premise,
        premises: list[tuple[int, Premise]],
        s: Subst,
        depth: int,
        rule: Rule,
    ) -> Iterator[tuple[Subst, list[tuple[int, Derivation]]]]:
        if isinstance(premise, EqPremise):
            terms = [premise.lhs, premise.rhs]
        else:
            terms = list(premise.args)
        unbound: list[str] = []
        for t in terms:
            unbound.extend(_unbound_vars(t, s))
        unbound = list(dict.fromkeys(unbound))
        target = None
        for name in unbound:
            ty = self._var_type(name, rule)
            if ty is not None:
                target = (name, ty)
                break
        if target is None:
            raise FlounderError(
                f"cannot schedule premise {premise}; unbound vars {unbound} "
                "have no known types"
            )
        name, ty = target
        from ..producers.combinators import _enum_values

        for candidate in _enum_values(self.ctx, ty, self.cfg.enum_depth):
            s2 = dict(s)
            s2[name] = value_to_term(candidate)
            yield from self._solve_seq(premises, s2, depth, rule, 0)

    def _var_type(self, renamed: str, rule: Rule) -> TypeExpr | None:
        # Renamed variables look like "__<tag>$<orig>".
        if "$" in renamed:
            orig = renamed.split("$", 1)[1]
        else:
            orig = renamed
        return rule.var_types.get(renamed) or rule.var_types.get(orig)


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------

def derivable(
    ctx: Context,
    rel_name: str,
    args: tuple[Value, ...],
    depth: int,
    cfg: SearchConfig = _DEFAULT,
) -> bool:
    """True when ``rel_name args`` has a derivation of height ≤ depth."""
    engine = _Engine(ctx, cfg)
    try:
        return engine.ground_query(rel_name, args, depth) is not None
    except _Budget:
        raise FlounderError(
            f"ground query {rel_name} exceeded the node budget"
        ) from None


def search_derivation(
    ctx: Context,
    rel_name: str,
    args: tuple[Value, ...],
    depth: int,
    cfg: SearchConfig = _DEFAULT,
) -> Derivation | None:
    """A derivation of ``rel_name args`` of height ≤ depth, or None."""
    return _Engine(ctx, cfg).ground_query(rel_name, args, depth)


def solutions(
    ctx: Context,
    rel_name: str,
    args: tuple[Term, ...],
    depth: int,
    cfg: SearchConfig = _DEFAULT,
    limit: int | None = None,
) -> list[dict[str, Value]]:
    """Solve an *open* goal: `args` may contain variables; returns the
    distinct ground instantiations of those variables for which the
    goal is derivable at height ≤ depth.

    Used to compute reference witness sets when validating producers:
    ``solutions(ctx, 'typing', (G, e, Var('t')), d)`` is the set of
    types ``t`` the enumerator must (eventually) produce.
    """
    engine = _Engine(ctx, cfg)
    from ..core.terms import var_set_all

    rel = ctx.relations.get(rel_name)
    goal_vars = sorted(var_set_all(args))
    seen: set[tuple[Value, ...]] = set()
    out: list[dict[str, Value]] = []

    def add(witness: dict[str, Value]) -> bool:
        key = tuple(witness[v] for v in goal_vars)
        if key in seen:
            return False
        seen.add(key)
        out.append(witness)
        return limit is not None and len(out) >= limit

    try:
        for s, _tree in engine.solve_goal(rel_name, args, {}, depth):
            resolved = {
                v: _eval_open(Var(v), s, ctx) for v in goal_vars
            }
            if all(_term_is_value(t) for t in resolved.values()):
                if add({v: term_to_value(t) for v, t in resolved.items()}):
                    break
                continue
            # Unbound variables in a solution are universal: *any*
            # well-typed instantiation is a witness.  Ground them by
            # bounded enumeration, guided by the argument types.
            grounded = _ground_witnesses(
                ctx, rel, args, resolved, goal_vars, cfg.enum_depth
            )
            stop = False
            for witness in grounded:
                if add(witness):
                    stop = True
                    break
            if stop:
                break
    except _Budget:
        pass  # return the (sound) under-approximation found so far
    return out


def _ground_witnesses(ctx, rel, goal_args, resolved, goal_vars, depth):
    """Enumerate well-typed instantiations of the unbound variables in
    an open solution (bounded by *depth*, capped)."""
    import itertools

    from ..producers.combinators import _enum_values

    var_types: dict[str, object] = {}

    def collect(term, ty) -> bool:
        term_w = term
        if isinstance(term_w, Var):
            existing = var_types.get(term_w.name)
            if existing is not None and existing != ty:
                return False
            var_types[term_w.name] = ty
            return True
        if isinstance(term_w, Fun):
            return False  # cannot type residual calls; skip solution
        if not ctx.datatypes.is_constructor(term_w.name):
            return False
        from ..core.types import Ty

        if not isinstance(ty, Ty) or ty.name not in ctx.datatypes:
            return False
        dt = ctx.datatypes.get(ty.name)
        if not dt.has_constructor(term_w.name):
            return False
        arg_tys = dt.constructor_arg_types(term_w.name, ty.args)
        return all(collect(a, t) for a, t in zip(term_w.args, arg_tys))

    for v, term in resolved.items():
        position = goal_args.index(Var(v)) if Var(v) in goal_args else None
        if position is None:
            # The goal variable occurs under constructors; find its
            # position by matching each goal argument.
            for i, g in enumerate(goal_args):
                if v in {name for name in _vars_of(g)}:
                    position = i
                    break
        if position is None:
            return
        if not collect(term, rel.arg_types[position]):
            return

    free = sorted(
        {name for t in resolved.values() for name in _vars_of_term(t)}
    )
    pools = []
    for name in free:
        ty = var_types.get(name)
        if ty is None:
            return
        pool = list(itertools.islice(_enum_values(ctx, ty, depth), 16))
        pools.append(pool)
    from ..core.terms import subst as term_subst

    count = 0
    for combo in itertools.product(*pools):
        env = {name: value_to_term(v) for name, v in zip(free, combo)}
        witness = {}
        ok = True
        for v, term in resolved.items():
            grounded = term_subst(term, env)
            if not _term_is_value(grounded):
                ok = False
                break
            witness[v] = term_to_value(grounded)
        if ok:
            yield witness
            count += 1
            if count >= 64:
                return


def _vars_of(t):
    from ..core.terms import free_vars

    return free_vars(t)


def _vars_of_term(t):
    from ..core.terms import free_vars

    return free_vars(t)
