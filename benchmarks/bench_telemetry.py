"""Serving telemetry overhead: the tax of measuring the engine.

The telemetry layer records per-query latency histograms, give-up
counters, queue-wait, and sampled span traces for every `Engine`
query.  This harness pins the acceptance bars of the serving-telemetry
PR on the bench_serve mixed check workload:

* **telemetry off** — the default `Engine` (``telemetry=None``) is the
  baseline: it takes the counter fast path (plain locked dict bumps)
  and must stay at noise vs PR 8, which bench_serve's session-overhead
  bars already guard.
* **telemetry on, sampled** — ``Telemetry(sample_every=128)``, the
  production default: full latency/counter recording on every query,
  span traces only on sampled queries.  Bar: **<= 1.05x** the off
  configuration (interleaved best-of-N ratio; 2.0x under
  ``REPRO_BENCH_QUICK=1`` — shared CI runners make tight bars flaky).
* **telemetry on, full tracing** — ``sample_every=1`` runs every
  query under an observation and keeps its span tree.  Reported only:
  tracing everything is a debugging mode, not a serving mode.

Run standalone (prints the table, writes ``BENCH_telemetry.json``)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -s
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_serve import (
    QUICK,
    _corpus_ctx,
    _engine_workload,
    _interleaved,
)
from repro.observe.telemetry import Telemetry
from repro.serve import Engine

OVERHEAD_BAR = 2.0 if QUICK else 1.05


def _paired_run(telemetry_factory, **engine_kwargs):
    """Interleaved best-of-N of the same warmed workload through two
    engines: telemetry off vs ``telemetry_factory()``.

    Separate contexts so memo/stats warmth cannot leak between the
    sides; both engines are warmed with a full pass before timing.
    """
    queries = _engine_workload()
    with Engine(_corpus_ctx(), **engine_kwargs) as eng_off, Engine(
        _corpus_ctx(), telemetry=telemetry_factory(), **engine_kwargs
    ) as eng_on:
        eng_off.prepare(queries)
        eng_on.prepare(queries)
        eng_off.run_batch(queries)
        eng_on.run_batch(queries)
        t_off, t_on, ratio = _interleaved(
            lambda: eng_off.run_batch(queries),
            lambda: eng_on.run_batch(queries),
        )
        traced = eng_on.telemetry.metrics.counter_snapshot().get(
            "serve.traced", 0
        )
    return t_off, t_on, ratio, traced


def bench_sampled_overhead():
    """Off vs the production default (every query counted, every
    128th traced), unbatched dispatch."""
    return _paired_run(lambda: Telemetry(sample_every=128), workers=1)


def bench_sampled_overhead_batched():
    """The same pair through batched ``check_batch`` dispatch — the
    path where telemetry amortizes one lock hold over the batch."""
    return _paired_run(
        lambda: Telemetry(sample_every=128),
        workers=1, batch=True, batch_max=64,
    )


def bench_full_trace_cost():
    """Off vs trace-everything (``sample_every=1``).  Reported only."""
    return _paired_run(lambda: Telemetry(sample_every=1), workers=1)


# -- pytest entry points -----------------------------------------------------


def test_sampled_telemetry_overhead():
    _, _, ratio, _ = bench_sampled_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"sampled telemetry overhead {ratio:.3f}x (bar {OVERHEAD_BAR}x)"
    )


def test_sampled_telemetry_overhead_batched():
    _, _, ratio, _ = bench_sampled_overhead_batched()
    assert ratio <= OVERHEAD_BAR, (
        f"sampled telemetry overhead {ratio:.3f}x on the batched path "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_telemetry_records_the_workload():
    """The cheap configuration still measures: every query counted,
    sampling traced at least the first query per shape."""
    queries = _engine_workload()
    telemetry = Telemetry(sample_every=128)
    with Engine(_corpus_ctx(), workers=1, telemetry=telemetry) as engine:
        engine.prepare(queries)
        engine.run_batch(queries)
    snap = telemetry.metrics.counter_snapshot()
    assert snap["serve.queries"] == len(queries)
    assert snap["serve.traced"] >= 1
    table = telemetry.query_table()
    assert sum(row["count"] for row in table) == len(queries)


if __name__ == "__main__":
    from benchmarks.benchjson import emit

    rows = {}
    for label, fn in (
        ("sampled", bench_sampled_overhead),
        ("sampled batched", bench_sampled_overhead_batched),
        ("full trace", bench_full_trace_cost),
    ):
        t_off, t_on, ratio, traced = fn()
        rows[label] = {
            "off_s": t_off, "on_s": t_on, "ratio": ratio, "traced": traced,
        }
        print(
            f"[bench_telemetry] {label:16s} off {t_off * 1e3:8.1f} ms"
            f"   on {t_on * 1e3:8.1f} ms   ratio {ratio:5.3f}x"
            f"   traced {traced}"
        )
    worst = max(rows[k]["ratio"] for k in ("sampled", "sampled batched"))
    print(
        f"[bench_telemetry] worst sampled overhead: {worst:.3f}x "
        f"(bar {OVERHEAD_BAR}x; full trace reported only)"
    )
    emit("telemetry", {**rows, "worst_sampled_overhead": worst,
                       "overhead_bar": OVERHEAD_BAR})
    sys.exit(0 if worst <= OVERHEAD_BAR else 1)
