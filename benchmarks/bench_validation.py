"""Section 5's cost: how long translation validation takes.

The paper derives Ltac2 proofs for every artifact (with a quadratic-
in-constructors completeness proof, Section 5.3).  Here certification
is bounded checking; this bench measures certification time for a
representative artifact of each kind, and verifies that every
certificate comes out clean.
"""

from __future__ import annotations

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record

from repro.core import parse_declarations
from repro.stdlib import standard_context
from repro.validation import (
    ValidationConfig,
    certify_checker,
    certify_enumerator,
    certify_generator,
)

DECLS = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive Sorted : list nat -> Prop :=
| Sorted_nil : Sorted []
| Sorted_sing : forall x, Sorted [x]
| Sorted_cons : forall x y l,
    le x y -> Sorted (y :: l) -> Sorted (x :: y :: l).
"""

CFG = ValidationConfig(
    domain_depth=3, max_tuples=150, ref_depth=12, max_fuel=16, gen_samples=100
)


@pytest.fixture(scope="module")
def ctx():
    c = standard_context()
    parse_declarations(c, DECLS)
    return c


def test_certify_checker_le(benchmark, ctx):
    cert = benchmark(certify_checker, ctx, "le", CFG)
    assert cert.ok, cert.summary()
    cases = sum(o.cases for o in cert.obligations)
    record("validation", "checker_le.obligation_cases", cases)
    print(f"\n[validation] checker le: {cases} obligation cases")


def test_certify_checker_sorted(benchmark, ctx):
    cert = benchmark(certify_checker, ctx, "Sorted", CFG)
    assert cert.ok, cert.summary()


def test_certify_enumerator_le(benchmark, ctx):
    cert = benchmark(certify_enumerator, ctx, "le", "oi", CFG)
    assert cert.ok, cert.summary()


def test_certify_generator_le(benchmark, ctx):
    cert = benchmark(certify_generator, ctx, "le", "oi", CFG)
    assert cert.ok, cert.summary()
