"""Figure 3 (left): checker throughput, handwritten vs derived.

For each case study the *same* handcrafted generator produces test
inputs; the property is checked once with the handwritten checker and
once with the derived one (compiled backend).  The paper reports
tests/second with <2% slowdown for the derived checkers (−0.51% BST,
−1.18% IFC, −0.82% STLC on their Coq-extracted code); in Python the
handwritten baseline is native code while the derived checker executes
structurally, so the expected *shape* is: same winner (handwritten),
modest constant-factor gap, identical verdicts.
"""

from __future__ import annotations

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record
from .conftest import run_property

TESTS = {"BST": 400, "STLC": 150, "IFC": 400}

_RESULTS: dict[tuple[str, str], float] = {}


def _cell_property(cell, checker):
    if cell.name == "IFC":
        return cell.workload.property_fn(cell.hand_gen, checker, cell.correct_impl)
    return cell.workload.property_fn(cell.hand_gen, checker, cell.correct_impl)


def _run(benchmark, cell, checker, label):
    gen, predicate = _cell_property(cell, checker)
    num = TESTS[cell.name]
    benchmark.extra_info["case"] = cell.name
    benchmark.extra_info["checker"] = label
    result = benchmark(run_property, gen, predicate, num, 11)
    assert result == num
    if benchmark.stats is None:
        return  # --benchmark-disable smoke mode
    stats = benchmark.stats.stats
    throughput = num / stats.mean
    _RESULTS[(cell.name, label)] = throughput
    record("fig3_checkers", f"{cell.name}.{label}_tests_per_s", throughput)
    print(f"\n[Fig3-left] {cell.name:5s} checker={label:12s} "
          f"{throughput:12,.0f} tests/s")
    _report(cell.name)


def _report(case: str) -> None:
    hand = _RESULTS.get((case, "handwritten"))
    derived = _RESULTS.get((case, "derived"))
    if hand and derived:
        delta = (derived - hand) / hand * 100
        record("fig3_checkers", f"{case}.delta_pct", delta)
        print(f"[Fig3-left] {case:5s} derived vs handwritten: {delta:+.1f}%")


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_bst_checker_throughput(benchmark, bst_cell, label):
    checker = (
        bst_cell.hand_check if label == "handwritten" else bst_cell.derived_check
    )
    _run(benchmark, bst_cell, checker, label)


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_stlc_checker_throughput(benchmark, stlc_cell, label):
    checker = (
        stlc_cell.hand_check if label == "handwritten" else stlc_cell.derived_check
    )
    _run(benchmark, stlc_cell, checker, label)


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_ifc_checker_throughput(benchmark, ifc_cell, label):
    checker = (
        ifc_cell.hand_check if label == "handwritten" else ifc_cell.derived_check
    )
    _run(benchmark, ifc_cell, checker, label)
