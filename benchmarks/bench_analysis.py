"""Static-analysis gate overhead benchmark.

The ISSUE-level requirement: ``derive_*`` with analysis disabled must
show no measurable overhead versus the pre-gate code path, and with
analysis enabled the cost must be one-time (reports are cached per
``(relation, mode, kind)``).

Three configurations over repeated ``derive_checker`` calls on the BST
and STLC case studies (schedule caches cleared between calls so derive
does real work each round):

* **disabled** — ``disable_analysis(ctx)``: the gate is a single dict
  lookup;
* **enabled-warm** — analysis on, report already cached;
* **enabled-cold** — analysis on, fresh report every round (worst
  case; not the steady state).

Run standalone (prints a table)::

    PYTHONPATH=src python benchmarks/bench_analysis.py

or under pytest (asserts disabled ≈ free and warm ≈ disabled)::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py -s
"""

from __future__ import annotations

import os
import time

from repro.analysis import disable_analysis, enable_analysis
from repro.casestudies import bst, stlc
from repro.derive import derive_checker

ROUNDS = 20 if os.environ.get("REPRO_BENCH_QUICK") else 100


def _fresh_derive(ctx, rel):
    # Force derive to rebuild from scratch each round: drop the
    # schedule and lowered-plan caches and every derived instance
    # (instances live in ctx.instances, not ctx.artifacts — handwritten
    # registrations survive).  This is the work the gate rides on top
    # of; the analysis-report cache is deliberately left alone so the
    # warm configuration stays warm.
    ctx.artifacts.pop("schedules", None)
    ctx.artifacts.pop("plans", None)
    for key in [
        k for k, inst in ctx.instances.items() if inst.source != "handwritten"
    ]:
        del ctx.instances[key]
    derive_checker(ctx, rel)


def _time_config(make_ctx, rel, *, disabled: bool, cold: bool) -> float:
    ctx = make_ctx()
    if disabled:
        disable_analysis(ctx)
    else:
        enable_analysis(ctx)
        if not cold:
            derive_checker(ctx, rel)  # warm the report cache
    # Best-of-3: a single 400-round pass is one GC pause away from
    # tripping the 1.5x bar on a loaded machine.
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(ROUNDS):
            if cold and not disabled:
                ctx.artifacts.pop("analysis_reports", None)
            _fresh_derive(ctx, rel)
        best = min(best, time.perf_counter() - start)
    return best


def run(report: bool = True):
    rows = []
    for name, make_ctx, rel in [
        ("bst", bst.make_context, "bst"),
        ("stlc", stlc.make_context, "typing"),
    ]:
        t_disabled = _time_config(make_ctx, rel, disabled=True, cold=False)
        t_warm = _time_config(make_ctx, rel, disabled=False, cold=False)
        t_cold = _time_config(make_ctx, rel, disabled=False, cold=True)
        rows.append((name, t_disabled, t_warm, t_cold))
    if report:
        print(f"{'workload':<10} {'disabled':>10} {'warm':>10} {'cold':>10}")
        for name, d, w, c in rows:
            print(f"{name:<10} {d:>9.3f}s {w:>9.3f}s {c:>9.3f}s")
    return rows


def test_disabled_gate_is_free():
    # Generous 1.5x bound: the disabled gate is one dict lookup per
    # derive; anything past noise means the gating regressed.
    for name, t_disabled, t_warm, _ in run(report=False):
        assert t_warm < t_disabled * 1.5, (
            f"{name}: warm analysis {t_warm:.3f}s vs disabled "
            f"{t_disabled:.3f}s — cached reports should be ~free"
        )


if __name__ == "__main__":
    try:
        from benchmarks.benchjson import emit
    except ImportError:  # standalone: python benchmarks/bench_analysis.py
        from benchjson import emit

    rows = run()
    emit("analysis", {
        name: {"disabled_s": d, "warm_s": w, "cold_s": c}
        for name, d, w, c in rows
    })
