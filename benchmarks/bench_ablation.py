"""Ablations over the design choices DESIGN.md calls out.

1. **Backend**: interpreted schedule vs compiled Python — quantifies
   how much of Figure 3's gap is interpretive overhead (the paper's
   artifact always emits code, so ``compiled`` is its analogue).
2. **Scheduler policy** (Section 4's stated preference): constrained
   producers for unknown premises (``prefer_producer=True``) vs the
   naive instantiate-arbitrarily-then-check strategy the paper's
   Section 3.1 dismisses as "too inefficient".
3. **Enumeration order**: ``enumerating`` (concatenation, the paper's
   combinator) vs fair ``interleaving`` (future-work flavor) for the
   products of an enumeration.
"""

from __future__ import annotations

import random

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record

from repro.core import parse_declarations
from repro.core.values import V, from_int, from_list
from repro.derive import DerivePolicy, Mode, build_schedule
from repro.derive.instances import CHECKER, resolve, resolve_compiled
from repro.derive.interp_checker import DerivedChecker
from repro.stdlib import standard_context

STLC = """
Inductive type : Type := | N : type | Arr : type -> type -> type.
Inductive term : Type :=
| Con : nat -> term | Add : term -> term -> term | Vart : nat -> term
| App : term -> term -> term | Abs : type -> term -> term.
Inductive lookup : list type -> nat -> type -> Prop :=
| lookup_here : forall t G, lookup (t :: G) 0 t
| lookup_there : forall t t2 G n, lookup G n t -> lookup (t2 :: G) (S n) t.
Inductive typing : list type -> term -> type -> Prop :=
| TCon : forall G n, typing G (Con n) N
| TAdd : forall G e1 e2, typing G e1 N -> typing G e2 N -> typing G (Add e1 e2) N
| TAbs : forall G e t1 t2, typing (t1 :: G) e t2 -> typing G (Abs t1 e) (Arr t1 t2)
| TVar : forall G x t, lookup G x t -> typing G (Vart x) t
| TApp : forall G e1 e2 t1 t2,
    typing G e2 t1 -> typing G e1 (Arr t1 t2) -> typing G (App e1 e2) t2.
"""


def _stlc_ctx():
    ctx = standard_context()
    parse_declarations(ctx, STLC)
    return ctx


def _workload():
    """A fixed batch of typing queries (well- and ill-typed)."""
    N = V("N")

    def arr(a, b):
        return V("Arr", a, b)

    con = lambda n: V("Con", from_int(n))
    var = lambda n: V("Vart", from_int(n))
    app = lambda f, x: V("App", f, x)
    abs_ = lambda t, e: V("Abs", t, e)
    add = lambda a, b: V("Add", a, b)
    empty = from_list([])
    cases = [
        (empty, con(3), N, True),
        (empty, add(con(1), con(2)), N, True),
        (empty, abs_(N, var(0)), arr(N, N), True),
        (empty, app(abs_(N, add(var(0), con(1))), con(2)), N, True),
        (empty, app(abs_(arr(N, N), var(0)), abs_(N, var(0))), arr(N, N), True),
        (empty, app(con(1), con(2)), N, False),
        (empty, abs_(N, var(1)), arr(N, N), False),
        (empty, add(abs_(N, var(0)), con(1)), N, False),
    ]
    return cases


def _drive(checker, cases, fuel=12):
    for env, e, t, expected in cases:
        result = checker(fuel, (env, e, t))
        assert result.is_true == expected, (e, t, result)


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_backend_ablation(benchmark, backend):
    ctx = _stlc_ctx()
    if backend == "interp":
        checker = resolve(ctx, CHECKER, "typing", Mode.checker(3)).fn
    else:
        checker = resolve_compiled(ctx, CHECKER, "typing", Mode.checker(3))
    cases = _workload()
    _drive(checker, cases)  # warm the instance closure once
    benchmark.extra_info["backend"] = backend
    benchmark(_drive, checker, cases)
    if benchmark.stats is None:
        return  # --benchmark-disable smoke mode
    mean = benchmark.stats.stats.mean
    record("ablation", f"backend.{backend}.ms_per_batch", mean * 1000)
    print(f"\n[ablation] backend={backend:9s} {mean*1000:.2f} ms / batch")


@pytest.mark.parametrize("policy_name", ["prefer_producer", "generate_and_test"])
def test_scheduler_policy_ablation(benchmark, policy_name):
    ctx = _stlc_ctx()
    policy = DerivePolicy(prefer_producer=(policy_name == "prefer_producer"))
    schedule = build_schedule(ctx, "typing", Mode.checker(3), policy)
    checker = DerivedChecker(ctx, schedule)
    cases = _workload()
    benchmark.extra_info["policy"] = policy_name

    def run():
        # generate-and-test enumerates *arbitrary* types for the
        # existentials, and the depth-d type count grows doubly
        # exponentially (1, 2, 5, 26, 677, …): fuel 3 keeps the naive
        # policy finite while the constrained policy is comfortable.
        # It may still answer None on the hardest cases: we only
        # demand it never *contradicts* the reference policy.
        for env, e, t, expected in cases:
            result = checker.check(3, (env, e, t))
            if not result.is_none:
                assert result.is_true == expected

    benchmark(run)
    if benchmark.stats is None:
        return  # --benchmark-disable smoke mode
    mean = benchmark.stats.stats.mean
    record("ablation", f"policy.{policy_name}.ms_per_batch", mean * 1000)
    print(f"\n[ablation] policy={policy_name:18s} {mean*1000:.2f} ms / batch")


def test_policy_precision(benchmark):
    """The paper's point, made concrete: at equal fuel the constrained-
    producer schedule decides strictly more queries than naive
    generate-and-test."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ctx = _stlc_ctx()
    smart = DerivedChecker(ctx, build_schedule(ctx, "typing", Mode.checker(3)))
    ctx2 = _stlc_ctx()
    naive = DerivedChecker(
        ctx2,
        build_schedule(
            ctx2, "typing", Mode.checker(3), DerivePolicy(prefer_producer=False)
        ),
    )
    cases = _workload()
    fuel = 3  # the naive policy is doubly exponential in fuel
    smart_decided = sum(
        not smart.check(fuel, (env, e, t)).is_none for env, e, t, _ in cases
    )
    naive_decided = sum(
        not naive.check(fuel, (env, e, t)).is_none for env, e, t, _ in cases
    )
    print(f"\n[ablation] decided at fuel {fuel}: "
          f"constrained={smart_decided}/{len(cases)}, "
          f"generate-and-test={naive_decided}/{len(cases)}")
    assert smart_decided >= naive_decided


@pytest.mark.parametrize("combinator", ["enumerating", "interleaving"])
def test_enumeration_order_ablation(benchmark, combinator):
    """Time-to-first-solution for type inference under the two
    enumeration orders."""
    from repro.producers.enumerators import Enumerator, enumerating, interleaving

    combine = enumerating if combinator == "enumerating" else interleaving
    # A skewed search: the witness lives in the last option.
    options = [
        lambda: Enumerator.from_sized(lambda s: range(2000)),
        lambda: Enumerator.from_sized(lambda s: range(2000, 4000)),
        lambda: Enumerator.ret("needle"),
    ]

    def first_needle():
        for x in combine(options).run(0):
            if x == "needle":
                return True
        return False

    benchmark.extra_info["combinator"] = combinator
    assert benchmark(first_needle)
    if benchmark.stats is None:
        return  # --benchmark-disable smoke mode
    mean = benchmark.stats.stats.mean
    record("ablation", f"combinator.{combinator}.us_to_witness", mean * 1e6)
    print(f"\n[ablation] combinator={combinator:13s} {mean*1e6:.1f} µs to witness")
