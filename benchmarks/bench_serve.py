"""Serving-layer benchmark: campaign speedup, engine throughput, and
the session-routing zero-overhead guard.

Three measurements cap the derivation-as-a-service PR:

* **campaign speedup** — ``parallel_quick_check`` with the ``fork``
  backend vs the ``inline`` sequential reference on the *same shard
  plan* (same seed, same per-shard seeds).  The merged
  :class:`~repro.quickchick.runner.CheckReport` must equal the
  sequential one field for field — that equality is asserted
  unconditionally.  The **>= 2x** wall-clock bar is asserted only on a
  >= 4-core runner (the acceptance criterion's wording); on smaller
  machines the ratio is reported.
* **engine throughput** — ``repro.serve.Engine`` answering a mixed
  check workload: queries/second plus p50/p99 per-query service time,
  in three configurations (sequential worker, sharded workers, batched
  dispatch through ``check_batch``), and once more under per-query op
  budgets to show give-ups are structured and cheap.
* **session overhead** — the session-scoped executors (``ctx.caches``
  now a per-session property, derive lock in ``resolve``) vs the
  frozen PR 7 executors (``benchmarks/legacy/exec_core_pr7.py`` and
  ``codegen_pr7.py``, verbatim pre-refactor copies) on the Figure 3
  checker workloads, the ``le`` enumerator stream, and the STLC
  generator; acceptance bar **<= 1.05x** per hot path, interleaved
  best-of-N (see bench_resilience for the harness rationale).

Run standalone (prints the table)::

    PYTHONPATH=src python benchmarks/bench_serve.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s

``REPRO_BENCH_QUICK=1`` shrinks workloads and relaxes the timing bars
(the CI smoke mode — shared runners make tight bars flaky).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_plan import bst_workload, stlc_workload
from benchmarks.legacy import codegen_pr7, exec_core_pr7
from repro.core import parse_declarations
from repro.core.values import Value
from repro.derive import Mode, build_schedule, exec_core
from repro.derive import codegen
from repro.derive.plan import lower_schedule
from repro.quickchick import classify, for_all
from repro.resilience import parallel_quick_check
from repro.serve import CheckQuery, Engine
from repro.stdlib import standard_context

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROUNDS = 2 if QUICK else 8
REPEATS = 3 if QUICK else 7
GEN_SAMPLES = 30 if QUICK else 300
CAMPAIGN_TESTS = 200 if QUICK else 2000
ENGINE_QUERIES = 80 if QUICK else 400

# Quick mode is a smoke test on shared CI runners; the real bars are
# the ISSUE's acceptance criteria.
OVERHEAD_BAR = 2.0 if QUICK else 1.05
SPEEDUP_BAR = 1.3 if QUICK else 2.0

LE_DECL = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive add : nat -> nat -> nat -> Prop :=
| add_O : forall m, add O m m
| add_S : forall n m p, add n m p -> add (S n) m (S p).
"""


def nat(n: int) -> Value:
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def _corpus_ctx():
    ctx = standard_context()
    parse_declarations(ctx, LE_DECL)
    return ctx


def _interleaved(fn_a, fn_b, repeats: int = REPEATS):
    """Best-of-N for two loops, alternating A/B each round; returns
    ``(best_a, best_b, best_ratio)`` with the minimum per-round
    ``b/a`` as the bar statistic (see bench_observe for rationale)."""
    best_a = best_b = best_ratio = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        t_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        t_b = time.perf_counter() - start
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
        best_ratio = min(best_ratio, t_b / t_a)
    return best_a, best_b, best_ratio


# -- campaign speedup --------------------------------------------------------


def _campaign_property(ctx, fuel: int = 40):
    """A compute-bearing ``le`` property: each test decides a derived
    checker call, so shard wall-clock is real executor work."""
    from repro.derive.instances import CHECKER, resolve

    check = resolve(ctx, CHECKER, "le", Mode.checker(2)).fn

    def gen(size, rng):
        a = rng.randint(0, size)
        return (a, a + rng.randint(0, size))

    def pred(pair):
        return check(fuel, (nat(pair[0]), nat(pair[1])))

    judged = classify(lambda pair: pair[0] == pair[1], "reflexive", pred)
    return for_all(gen, judged, name="le_holds")


def _report_key(report):
    return (
        report.tests_run,
        report.discards,
        report.failed,
        report.labels,
        report.budget_trips,
        report.budget_retries,
        report.stopped_reason,
        report.shard_seeds,
    )


def bench_campaign_speedup(workers: "int | None" = None, seed: int = 2024):
    """Fork-backend campaign vs the inline sequential reference on the
    same shard plan; returns ``(t_seq, t_par, report_seq, report_par)``."""
    ctx = _corpus_ctx()
    if workers is None:
        workers = min(os.cpu_count() or 1, 4)
    prop = _campaign_property(ctx)
    kwargs = dict(
        workers=workers, size=18, seed=seed, ctx=ctx,
    )

    start = time.perf_counter()
    report_seq = parallel_quick_check(
        prop, CAMPAIGN_TESTS, backend="inline", **kwargs
    )
    t_seq = time.perf_counter() - start

    start = time.perf_counter()
    report_par = parallel_quick_check(
        prop, CAMPAIGN_TESTS, backend="fork", **kwargs
    )
    t_par = time.perf_counter() - start
    return t_seq, t_par, report_seq, report_par


# -- engine throughput -------------------------------------------------------


def _engine_workload(rng: "random.Random | None" = None):
    """A mixed check workload over ``le``/``add``: many repeated
    (rel, fuel) groups so batched dispatch has something to fuse."""
    rng = rng or random.Random(7)
    queries = []
    for _ in range(ENGINE_QUERIES):
        if rng.random() < 0.7:
            a = rng.randint(0, 30)
            b = rng.randint(0, 30)
            queries.append(CheckQuery("le", (nat(a), nat(b)), fuel=64))
        else:
            a = rng.randint(0, 12)
            b = rng.randint(0, 12)
            queries.append(
                CheckQuery("add", (nat(a), nat(b), nat(a + b)), fuel=32)
            )
    return queries


def _percentile(sorted_xs, q):
    if not sorted_xs:
        return 0.0
    idx = min(len(sorted_xs) - 1, int(round(q * (len(sorted_xs) - 1))))
    return sorted_xs[idx]


def _drive_engine(queries, **engine_kwargs):
    ctx = _corpus_ctx()
    with Engine(ctx, **engine_kwargs) as engine:
        engine.prepare(queries)
        # Warm pass: instance resolution and code compilation paid once.
        engine.run_batch(queries[: max(1, len(queries) // 20)])
        start = time.perf_counter()
        results = engine.run_batch(queries)
        wall = time.perf_counter() - start
        stats = engine.stats()
    lat = sorted(r.elapsed_seconds for r in results)
    batched = sum(w["batched"] for w in stats["per_worker"])
    return {
        "qps": len(queries) / wall,
        "wall": wall,
        "p50": _percentile(lat, 0.50),
        "p99": _percentile(lat, 0.99),
        "ok": sum(r.ok for r in results),
        "gave_up": sum(r.status == "gave_up" for r in results),
        "errors": sum(r.status == "error" for r in results),
        "batched": batched,
        "results": results,
    }


def bench_engine_throughput():
    """qps and p50/p99 service time across the three configurations,
    plus the same workload under per-query op budgets."""
    queries = _engine_workload()
    shard_workers = min(os.cpu_count() or 1, 4)
    rows = {
        "sequential": _drive_engine(queries, workers=1, batch=False),
        "sharded": _drive_engine(queries, workers=shard_workers, batch=False),
        "batched": _drive_engine(queries, workers=1, batch=True, batch_max=64),
    }
    budgeted = [
        CheckQuery(q.rel, q.args, fuel=q.fuel, max_ops=40) for q in queries
    ]
    rows["budgeted"] = _drive_engine(
        budgeted, workers=1, batch=False
    )
    return rows


# -- session overhead vs frozen PR 7 -----------------------------------------


def _rounds_for(wl) -> int:
    return ROUNDS * (12 if "STLC" in wl.name else 1)


def _checker_loop(wl, run_checker):
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    ctx, fuel, pool = wl.ctx, wl.fuel, wl.args_pool
    rounds = _rounds_for(wl)

    def loop():
        for _ in range(rounds):
            for args in pool:
                run_checker(ctx, plans, plan, fuel, fuel, args)

    return loop


def _checker_answers(wl, run_checker):
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    return [
        run_checker(wl.ctx, plans, plan, wl.fuel, wl.fuel, args)
        for args in wl.args_pool
    ]


def bench_interp_overhead(wl):
    """Session-routed interpreter (``ctx.caches`` property per level)
    vs the frozen PR 7 interpreter, same Plan, same pool."""
    assert _checker_answers(wl, exec_core_pr7.run_checker) == _checker_answers(
        wl, exec_core.run_checker
    )
    base = _checker_loop(wl, exec_core_pr7.run_checker)
    live = _checker_loop(wl, exec_core.run_checker)
    base()  # warm caches (instance resolution, plan lowering)
    live()
    return _interleaved(base, live)


def bench_compiled_overhead(wl):
    """Live compiled checker (module global ``_ctx``, caches fetched
    per level) vs the PR 7 code generator's output (baked dict)."""
    base_fn = codegen_pr7.compile_checker(wl.ctx, wl.schedule)
    live_fn = codegen.compile_checker(wl.ctx, wl.schedule)
    assert wl.answers(base_fn) == wl.answers(live_fn)
    base = lambda: wl.loop(base_fn)  # noqa: E731
    live = lambda: wl.loop(live_fn)  # noqa: E731
    base()
    live()
    return _interleaved(base, live)


def bench_enum_overhead():
    ctx = _corpus_ctx()
    schedule = build_schedule(ctx, "le", Mode.from_string("oo"))
    plan = lower_schedule(ctx, schedule)
    assert list(exec_core_pr7.run_enum(ctx, plan, 5, 5, ())) == list(
        exec_core.run_enum(ctx, plan, 5, 5, ())
    )
    rounds = ROUNDS * 4

    def base():
        for _ in range(rounds):
            for _pair in exec_core_pr7.run_enum(ctx, plan, 7, 7, ()):
                pass

    def live():
        for _ in range(rounds):
            for _pair in exec_core.run_enum(ctx, plan, 7, 7, ()):
                pass

    base()
    live()
    return _interleaved(base, live)


def bench_gen_overhead():
    from repro.casestudies import stlc
    from repro.core.values import V, from_list

    ctx = stlc.make_context()
    schedule = build_schedule(ctx, "typing", Mode.from_string("ioi"))
    plan = lower_schedule(ctx, schedule)
    ins = (from_list([]), V("N"))

    def base():
        rng = random.Random(3)
        for _ in range(GEN_SAMPLES):
            exec_core_pr7.run_gen(ctx, plan, 6, 6, ins, rng)

    def live():
        rng = random.Random(3)
        for _ in range(GEN_SAMPLES):
            exec_core.run_gen(ctx, plan, 6, 6, ins, rng)

    base()
    live()
    return _interleaved(base, live)


# -- reporting / acceptance --------------------------------------------------


def _row(label, t_base, t_live, ratio):
    print(
        f"[bench_serve] {label:26s} pr7 {t_base * 1e3:9.1f} ms"
        f"   live {t_live * 1e3:9.1f} ms   overhead {ratio:5.3f}x"
    )


def run_all(verbose: bool = True):
    overheads = {}
    for wl_fn in (bst_workload, stlc_workload):
        wl = wl_fn()
        t_b, t_l, r = bench_interp_overhead(wl)
        overheads[f"interp {wl.name}"] = r
        if verbose:
            _row(f"interp  {wl.name}", t_b, t_l, r)
        t_b, t_l, r = bench_compiled_overhead(wl_fn())
        overheads[f"compiled {wl.name}"] = r
        if verbose:
            _row(f"compiled {wl.name}", t_b, t_l, r)
    t_b, t_l, r = bench_enum_overhead()
    overheads["enum le[oo]"] = r
    if verbose:
        _row("enum    le[oo]", t_b, t_l, r)
    t_b, t_l, r = bench_gen_overhead()
    overheads["gen STLC[ioi]"] = r
    if verbose:
        _row("gen     STLC typing[ioi]", t_b, t_l, r)

    t_seq, t_par, rep_s, rep_p = bench_campaign_speedup()
    speedup = t_seq / t_par if t_par else float("inf")
    merged_equal = _report_key(rep_s) == _report_key(rep_p)
    if verbose:
        cores = os.cpu_count() or 1
        print(
            f"[bench_serve] campaign {CAMPAIGN_TESTS} tests: inline"
            f" {t_seq * 1e3:.0f} ms   fork {t_par * 1e3:.0f} ms   "
            f"speedup {speedup:.2f}x on {cores} cores   "
            f"merged==sequential: {merged_equal}"
        )
    engine = bench_engine_throughput()
    if verbose:
        for name, row in engine.items():
            print(
                f"[bench_serve] engine {name:10s} {row['qps']:8.0f} q/s"
                f"   p50 {row['p50'] * 1e6:7.1f} us"
                f"   p99 {row['p99'] * 1e6:7.1f} us"
                f"   ok/gave_up/err {row['ok']}/{row['gave_up']}"
                f"/{row['errors']}   batched {row['batched']}"
            )
    return overheads, speedup, merged_equal, engine


# -- pytest entry points -----------------------------------------------------


def test_session_overhead_interp_bst():
    _, _, ratio = bench_interp_overhead(bst_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"session overhead {ratio:.3f}x on BST interp (bar {OVERHEAD_BAR}x)"
    )


def test_session_overhead_interp_stlc():
    _, _, ratio = bench_interp_overhead(stlc_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"session overhead {ratio:.3f}x on STLC interp (bar {OVERHEAD_BAR}x)"
    )


def test_session_overhead_compiled_stlc():
    _, _, ratio = bench_compiled_overhead(stlc_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"session overhead {ratio:.3f}x on STLC compiled (bar {OVERHEAD_BAR}x)"
    )


def test_session_overhead_enum():
    _, _, ratio = bench_enum_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"session overhead {ratio:.3f}x on le[oo] enum (bar {OVERHEAD_BAR}x)"
    )


def test_session_overhead_gen():
    _, _, ratio = bench_gen_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"session overhead {ratio:.3f}x on STLC gen (bar {OVERHEAD_BAR}x)"
    )


def test_campaign_merge_equals_sequential():
    """The correctness half of the speedup criterion holds on any
    machine: fork and inline agree field for field on the same seed."""
    _, _, rep_s, rep_p = bench_campaign_speedup(workers=4, seed=99)
    assert _report_key(rep_s) == _report_key(rep_p)
    assert rep_s.coverage == rep_p.coverage


def test_campaign_speedup_on_multicore():
    """The >= 2x wall-clock bar, asserted only where the acceptance
    criterion states it: a >= 4-core runner."""
    cores = os.cpu_count() or 1
    if cores < 4:
        import pytest

        pytest.skip(f"speedup bar needs >= 4 cores (runner has {cores})")
    t_seq, t_par, rep_s, rep_p = bench_campaign_speedup()
    assert _report_key(rep_s) == _report_key(rep_p)
    speedup = t_seq / t_par
    assert speedup >= SPEEDUP_BAR, (
        f"fork campaign speedup {speedup:.2f}x on {cores} cores "
        f"(bar {SPEEDUP_BAR}x)"
    )


def test_engine_serves_workload():
    rows = bench_engine_throughput()
    for name in ("sequential", "sharded", "batched"):
        row = rows[name]
        assert row["errors"] == 0
        assert row["gave_up"] == 0
        assert row["ok"] == ENGINE_QUERIES
    answers = {}
    for name in ("sequential", "sharded", "batched"):
        answers[name] = [r.value for r in rows[name]["results"]]
    assert answers["sequential"] == answers["sharded"] == answers["batched"]
    budgeted = rows["budgeted"]
    assert budgeted["errors"] == 0
    assert budgeted["ok"] + budgeted["gave_up"] == ENGINE_QUERIES
    for r in budgeted["results"]:
        if r.status == "gave_up":
            assert r.give_up is not None and r.give_up.reason


if __name__ == "__main__":
    from benchmarks.benchjson import emit

    overheads, speedup, merged_equal, _engine = run_all()
    worst = max(overheads.values())
    print(f"[bench_serve] worst session overhead: {worst:.3f}x")
    emit("serve", {
        "session_overhead": overheads,
        "worst_session_overhead": worst,
        "overhead_bar": OVERHEAD_BAR,
        "campaign_speedup": speedup,
        "merged_equals_sequential": merged_equal,
        "engine": {
            name: {k: v for k, v in row.items() if k != "results"}
            for name, row in _engine.items()
        },
    })
    ok = worst <= OVERHEAD_BAR and merged_equal
    if (os.cpu_count() or 1) >= 4:
        ok = ok and speedup >= SPEEDUP_BAR
    sys.exit(0 if ok else 1)
