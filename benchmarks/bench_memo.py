"""Memoization layer benchmark: repeated-query and decide() workloads.

Measures the derive hot path with and without the monotonicity-aware
memo layer (``repro.derive.memo``) on the BST and STLC case studies:

* **repeated-query** — a fixed pool of inputs checked over many
  rounds, the shape of mutation testing (`bench_mutation.py` re-checks
  the same inputs once per mutant) and of shrinking loops;
* **decide() fuel-doubling** — repeated semi-decisions, where the memo
  collapses the doubling loop to a table lookup after the first call.

Run standalone (prints a table plus the DeriveStats report)::

    PYTHONPATH=src python benchmarks/bench_memo.py

or under pytest (asserts the >= 2x speedup acceptance bar)::

    PYTHONPATH=src python -m pytest benchmarks/bench_memo.py -s
"""

from __future__ import annotations

import random
import time

from repro.casestudies import bst, stlc
from repro.core.values import V, from_int, from_list
from repro.derive import derive_checker, derive_stats, enable_memoization

# The workload is sized so the memo layer's table management
# amortizes; REPRO_BENCH_QUICK deliberately does NOT shrink it (tiny
# pools make the memoized run slower, not faster, and the full run is
# already seconds).
ROUNDS = 12
POOL = 40


def _bst_pool(seed: int = 11):
    rng = random.Random(seed)
    lo, hi = from_int(0), from_int(16)
    pool = []
    while len(pool) < POOL:
        out = bst.handwritten_bst_gen(8, (lo, hi), rng)
        if isinstance(out, tuple):
            pool.append(out[0])
            pool.append(bst.insert_swapped(rng.randrange(1, 16), out[0]))
    return lo, hi, pool[:POOL]


def _stlc_pool(seed: int = 12):
    rng = random.Random(seed)

    def go(depth: int):
        if depth == 0 or rng.random() < 0.3:
            return (
                V("Con", from_int(rng.randrange(0, 3)))
                if rng.random() < 0.5
                else V("Vart", from_int(rng.randrange(0, 2)))
            )
        pick = rng.randrange(3)
        if pick == 0:
            return V("Add", go(depth - 1), go(depth - 1))
        if pick == 1:
            return V("Abs", V("N"), go(depth - 1))
        return V("App", go(depth - 1), go(depth - 1))

    return [go(3) for _ in range(POOL)]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_bst_repeated(memoized: bool) -> tuple[float, object]:
    ctx = bst.make_context()
    if memoized:
        enable_memoization(ctx)
    chk = derive_checker(ctx, "bst")
    lo, hi, pool = _bst_pool()

    def workload():
        for _ in range(ROUNDS):
            for tree in pool:
                chk(24, lo, hi, tree)

    return _timed(workload), derive_stats(ctx)


def bench_stlc_decide(memoized: bool) -> tuple[float, object]:
    ctx = stlc.make_context()
    if memoized:
        enable_memoization(ctx)
    chk = derive_checker(ctx, "typing")
    env = from_list([])
    ty = V("N")
    pool = _stlc_pool()

    def workload():
        for _ in range(ROUNDS):
            for term in pool:
                chk.decide((env, term, ty), max_fuel=16)

    return _timed(workload), derive_stats(ctx)


WORKLOADS = [
    ("BST repeated-query", bench_bst_repeated),
    ("STLC decide() doubling", bench_stlc_decide),
]


def run_all(verbose: bool = True) -> dict[str, float]:
    speedups: dict[str, float] = {}
    for name, bench in WORKLOADS:
        t_plain, _ = bench(memoized=False)
        t_memo, stats = bench(memoized=True)
        speedup = t_plain / t_memo
        speedups[name] = speedup
        if verbose:
            print(
                f"\n[bench_memo] {name:24s} uncached {t_plain * 1e3:9.1f} ms"
                f"   memoized {t_memo * 1e3:9.1f} ms   speedup {speedup:5.1f}x"
            )
            print(
                f"[bench_memo]   hits={stats.cache_hits:,} "
                f"misses={stats.cache_misses:,} "
                f"hit_rate={stats.hit_rate:.1%} "
                f"handler_attempts={stats.handler_attempts:,}"
            )
    return speedups


def test_repeated_query_speedup():
    """Acceptance bar: >= 2x over the uncached baseline."""
    t_plain, _ = bench_bst_repeated(memoized=False)
    t_memo, stats = bench_bst_repeated(memoized=True)
    assert stats.cache_hits > 0 and stats.cache_misses > 0
    assert t_plain / t_memo >= 2.0, (
        f"memoized speedup only {t_plain / t_memo:.2f}x"
    )


def test_decide_doubling_speedup():
    t_plain, _ = bench_stlc_decide(memoized=False)
    t_memo, stats = bench_stlc_decide(memoized=True)
    assert stats.cache_hits > 0
    assert t_plain / t_memo >= 2.0, (
        f"memoized speedup only {t_plain / t_memo:.2f}x"
    )


if __name__ == "__main__":
    try:
        from benchmarks.benchjson import emit
    except ImportError:  # standalone: python benchmarks/bench_memo.py
        from benchjson import emit

    results = run_all()
    worst = min(results.values())
    print(f"\n[bench_memo] worst speedup: {worst:.1f}x (bar: 2.0x)")
    emit("memo", {
        "speedups": results, "worst_speedup": worst, "bar": 2.0,
    })
    raise SystemExit(0 if worst >= 2.0 else 1)
