"""Figure 3 (right): generator throughput, handwritten vs derived.

The dual experiment: the *same* handcrafted checker judges the
property; inputs come once from the handcrafted generator and once
from the derived one (compiled backend).  The paper reports 1–3.5%
slowdown (−1.21% BST, −1.74% STLC); derived generators backtrack
locally, so they are expected to lose slightly more than derived
checkers do.
"""

from __future__ import annotations

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record
from .conftest import run_property

TESTS = {"BST": 300, "STLC": 100, "IFC": 300}

_RESULTS: dict[tuple[str, str], float] = {}


def _run(benchmark, cell, gen_fn, label):
    gen, predicate = cell.workload.property_fn(
        gen_fn, cell.hand_check, cell.correct_impl
    )
    num = TESTS[cell.name]
    benchmark.extra_info["case"] = cell.name
    benchmark.extra_info["generator"] = label
    result = benchmark(run_property, gen, predicate, num, 13)
    assert result == num
    if benchmark.stats is None:
        return  # --benchmark-disable smoke mode: one plain run, no stats
    stats = benchmark.stats.stats
    throughput = num / stats.mean
    _RESULTS[(cell.name, label)] = throughput
    record("fig3_generators", f"{cell.name}.{label}_tests_per_s", throughput)
    print(f"\n[Fig3-right] {cell.name:5s} generator={label:12s} "
          f"{throughput:12,.0f} tests/s")
    hand = _RESULTS.get((cell.name, "handwritten"))
    derived = _RESULTS.get((cell.name, "derived"))
    if hand and derived:
        delta = (derived - hand) / hand * 100
        record("fig3_generators", f"{cell.name}.delta_pct", delta)
        print(f"[Fig3-right] {cell.name:5s} derived vs handwritten: {delta:+.1f}%")


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_bst_generator_throughput(benchmark, bst_cell, label):
    gen_fn = bst_cell.hand_gen if label == "handwritten" else bst_cell.derived_gen
    _run(benchmark, bst_cell, gen_fn, label)


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_stlc_generator_throughput(benchmark, stlc_cell, label):
    gen_fn = stlc_cell.hand_gen if label == "handwritten" else stlc_cell.derived_gen
    _run(benchmark, stlc_cell, gen_fn, label)


@pytest.mark.parametrize("label", ["handwritten", "derived"])
def test_ifc_generator_throughput(benchmark, ifc_cell, label):
    gen_fn = ifc_cell.hand_gen if label == "handwritten" else ifc_cell.derived_gen
    _run(benchmark, ifc_cell, gen_fn, label)
