"""Table 1: derived computations from Software Foundations.

Regenerates the paper's counts — per volume, the number of inductive
relations, how many the full algorithm derives checkers for, and how
many the Algorithm 1 baseline supports — and benchmarks the census
itself (the time to derive checkers for the whole corpus).

Paper's numbers:        LF 38 / 30 / 11,  PLF 71 / 67 / 25.
Expected shape here:    full algorithm covers every first-order
relation; the baseline covers a small fraction.
"""

from __future__ import annotations

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record

from repro.sf.registry import format_table1, table1


@pytest.fixture(scope="module")
def census():
    rows, chapters = table1()
    return rows, chapters


def test_table1_census(benchmark, census):
    rows, _chapters = census
    benchmark(table1)

    print()
    print("=== Table 1: derived computations from Software Foundations ===")
    print(format_table1(rows))
    for volume in ("LF", "PLF"):
        row = rows[volume]
        in_scope = row.relations - row.out_of_scope
        record("table1", volume, {
            "relations": row.relations, "out_of_scope": row.out_of_scope,
            "derived": row.derived, "baseline": row.baseline,
        })
        print(
            f"{volume}: {row.relations} relations, {row.out_of_scope} "
            f"higher-order (out of scope), {row.derived}/{in_scope} "
            f"in-scope derived, baseline {row.baseline}"
        )
        assert row.derived == in_scope, row.failures
        assert row.baseline < row.derived


def test_table1_shape(benchmark, census):
    """The qualitative claims behind Table 1."""
    rows, _ = census
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for volume in ("LF", "PLF"):
        row = rows[volume]
        # The full algorithm strictly dominates the baseline…
        assert row.derived > 2 * row.baseline
        # …and covers everything first-order.
        assert not row.failures
