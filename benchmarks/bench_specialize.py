"""Specialization benchmark: the Figure-3-gap guard.

Measures the term-representation specialization pass
(:mod:`repro.derive.specialize` + the twin emission in
``repro.derive.codegen``) three ways:

* **specialized vs boxed-only** — the live code generator with the
  pass on vs off (fresh contexts, identical schedules) on the BST
  nat-heavy checker workload; acceptance bar: specialization is
  **>= 2x** on BST (``lt`` premises collapse from Peano walks to int
  arithmetic).  STLC is reported unbarred — its cost sits in the
  typing *enumerator* (see EXPERIMENTS.md), which the checker pass
  does not touch.
* **no-regression guard** — the live emitter with specialization
  *disabled* vs the frozen pre-specialization emitter
  (``benchmarks/legacy/codegen_pr5.py``); bar: **<= 1.05x** (the
  twin machinery must cost nothing when off).
* **functionalization vs PR 6** — the live emitter with the
  determinacy-driven functionalization + inlining pass *on* vs the
  frozen pre-pass emitter (``benchmarks/legacy/codegen_pr6.py``) on
  the STLC typing checker, where the TApp premise collapses from
  enumerate-then-check to direct type inference; bar: **>= 1.5x**.
  Plus the mirror-image no-regression guard: pass *off* (both
  contexts) vs the frozen PR-6 emitter, **<= 1.05x**.
* **Figure 3 deltas** — derived vs handwritten checker throughput per
  case study (BST / STLC / IFC), printed for the EXPERIMENTS.md
  table; reported, not barred (the residual gaps are analyzed there).

Run standalone (prints the table)::

    PYTHONPATH=src python benchmarks/bench_specialize.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_specialize.py -s

``REPRO_BENCH_QUICK=1`` shrinks the workloads and relaxes the bars to
sanity checks — the CI smoke mode (shared runners make tight timing
bars flaky).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.legacy.codegen_pr5 import (
    compile_checker as pr5_compile_checker,
)
from benchmarks.legacy.codegen_pr6 import (
    compile_checker as pr6_compile_checker,
)
from repro.casestudies import bst, ifc, stlc
from repro.core.values import from_int
from repro.derive import Mode, build_schedule, disable_functionalization
from repro.derive.codegen import compile_checker as live_compile_checker
from repro.derive.instances import CHECKER, resolve_compiled
from repro.derive.specialize import disable_specialization

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROUNDS = 2 if QUICK else 8
POOL = 10 if QUICK else 40
FIG3_TESTS = 40 if QUICK else 300
REPEATS = 2 if QUICK else 5

# Quick mode is a smoke test: workloads still run end to end and must
# agree, but shared CI runners are too noisy for the real bars.
SPEC_BAR = 1.0 if QUICK else 2.0
LEGACY_BAR = 3.0 if QUICK else 1.05
FUNC_BAR = 1.0 if QUICK else 1.5


def _timed(fn, repeats: int = REPEATS) -> float:
    """Best-of-N CPU time (process_time defends against machine noise
    far better than wall clock on shared hardware)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


def _timed2(fn_a, fn_b, repeats: int = REPEATS) -> tuple[float, float]:
    """Interleaved best-of-N for a pair of candidates: alternating the
    measurements each round cancels CPU-frequency drift that would
    otherwise systematically favour whichever side runs while the
    clock is ramped up (the same discipline as ``bench_fig3_deltas``)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        fn_a()
        best_a = min(best_a, time.process_time() - start)
        start = time.process_time()
        fn_b()
        best_b = min(best_b, time.process_time() - start)
    return best_a, best_b


# -- workloads ---------------------------------------------------------------


def _bst_pool(seed: int = 11):
    rng = random.Random(seed)
    lo, hi = from_int(0), from_int(16)
    pool = []
    while len(pool) < POOL:
        out = bst.handwritten_bst_gen(8, (lo, hi), rng)
        if isinstance(out, tuple):
            pool.append(out[0])
    return [(lo, hi, t) for t in pool]


class Workload:
    def __init__(self, name, make_ctx, rel, fuel, args_pool):
        self.name = name
        self.make_ctx = make_ctx
        self.rel = rel
        self.fuel = fuel
        self.args_pool = args_pool

    def loop(self, check):
        fuel = self.fuel
        for _ in range(ROUNDS):
            for args in self.args_pool:
                check(fuel, args)

    def answers(self, check):
        return [check(self.fuel, args) for args in self.args_pool]


def bst_workload() -> Workload:
    return Workload("BST bst", bst.make_context, "bst", 24, _bst_pool())


def _stlc_pool(seed: int = 13):
    rng = random.Random(seed)
    env = stlc.StlcWorkload(None).environment()
    pool = []
    while len(pool) < POOL:
        ty = stlc._gen_type(2, rng)
        out = stlc.handwritten_typing_gen(6, (env, ty), rng)
        if isinstance(out, tuple):
            pool.append((env, out[0], ty))
    return pool


def stlc_workload() -> Workload:
    return Workload(
        "STLC typing", stlc.make_context, "typing", 24, _stlc_pool()
    )


# -- measurements ------------------------------------------------------------


def bench_spec_vs_boxed(wl: Workload):
    """Live emitter, pass on vs pass off, fresh context each (the flag
    is read at compile time; dependencies recompile under it too)."""
    ctx_spec = wl.make_ctx()
    ctx_plain = wl.make_ctx()
    disable_specialization(ctx_plain)
    mode = Mode.checker(ctx_spec.relations.get(wl.rel).arity)
    spec = resolve_compiled(ctx_spec, CHECKER, wl.rel, mode)
    plain = resolve_compiled(ctx_plain, CHECKER, wl.rel, mode)
    assert wl.answers(spec) == wl.answers(plain)
    assert spec.__spec_reprs__  # the pass genuinely fired
    t_plain = _timed(lambda: wl.loop(plain))
    t_spec = _timed(lambda: wl.loop(spec))
    return t_plain, t_spec


def bench_disabled_vs_pr5(wl: Workload):
    """The live emitter with specialization off against the frozen
    PR-5 emitter: the twin machinery must be free when disabled.

    Specialization is disabled on *both* contexts: the frozen emitter
    resolves its premises (e.g. ``lt``) through the live registry, so
    leaving the flag on would hand it specialized premise checkers the
    PR-5 code never had — flattering neither side fairly."""
    ctx_pr5 = wl.make_ctx()
    ctx_off = wl.make_ctx()
    disable_specialization(ctx_pr5)
    disable_specialization(ctx_off)
    mode = Mode.checker(ctx_pr5.relations.get(wl.rel).arity)
    sched_pr5 = build_schedule(ctx_pr5, wl.rel, mode)
    sched_off = build_schedule(ctx_off, wl.rel, mode)
    legacy = pr5_compile_checker(ctx_pr5, sched_pr5)
    live = live_compile_checker(ctx_off, sched_off)
    assert wl.answers(legacy) == wl.answers(live)
    t_legacy = _timed(lambda: wl.loop(legacy))
    t_live = _timed(lambda: wl.loop(live))
    return t_legacy, t_live


def bench_func_vs_pr6(wl: Workload):
    """The headline: live emitter with the functionalization pass on
    vs the frozen PR-6 emitter (which predates the pass — its context
    gets the pass disabled so its plans carry no OP_EVALREL ops, the
    exact PR-6 lowering).  Answers must agree exactly: at these fuels
    the workload is decided definitely on both sides, so refinement
    equals equivalence here."""
    ctx_on = wl.make_ctx()
    ctx_pr6 = wl.make_ctx()
    disable_functionalization(ctx_pr6)
    mode = Mode.checker(ctx_on.relations.get(wl.rel).arity)
    sched_on = build_schedule(ctx_on, wl.rel, mode)
    sched_pr6 = build_schedule(ctx_pr6, wl.rel, mode)
    live = live_compile_checker(ctx_on, sched_on)
    legacy = pr6_compile_checker(ctx_pr6, sched_pr6)
    assert wl.answers(live) == wl.answers(legacy)
    return _timed2(lambda: wl.loop(legacy), lambda: wl.loop(live))


def bench_disabled_vs_pr6(wl: Workload):
    """The live emitter with functionalization off against the frozen
    PR-6 emitter: analysis + transform machinery must be free when
    disabled.  The pass is off on *both* contexts — the frozen emitter
    cannot execute OP_EVALREL plans (it predates the op), and it
    resolves premises through the live registry, so leaving the flag
    on would hand it functionalized premise checkers PR 6 never had."""
    ctx_pr6 = wl.make_ctx()
    ctx_off = wl.make_ctx()
    disable_functionalization(ctx_pr6)
    disable_functionalization(ctx_off)
    mode = Mode.checker(ctx_pr6.relations.get(wl.rel).arity)
    sched_pr6 = build_schedule(ctx_pr6, wl.rel, mode)
    sched_off = build_schedule(ctx_off, wl.rel, mode)
    legacy = pr6_compile_checker(ctx_pr6, sched_pr6)
    live = live_compile_checker(ctx_off, sched_off)
    assert wl.answers(legacy) == wl.answers(live)
    return _timed2(lambda: wl.loop(legacy), lambda: wl.loop(live))


def bench_fig3_deltas():
    """Derived vs handwritten checker throughput per case study —
    the numbers behind the EXPERIMENTS.md before/after table."""
    from benchmarks.conftest import run_property

    cases = [
        ("BST", bst, "bst", "handwritten_bst_gen",
         "handwritten_bst_check", "insert", "BstWorkload"),
        ("STLC", stlc, "typing", "handwritten_typing_gen",
         "handwritten_typing_check", "subst", "StlcWorkload"),
        ("IFC", ifc, "indist_list", "handwritten_indist_gen",
         "handwritten_indist_check", "CORRECT_STEP", "IfcWorkload"),
    ]
    deltas = {}
    for name, mod, rel, gen_name, hand_name, impl_name, wname in cases:
        ctx = mod.make_context()
        w = getattr(mod, wname)(ctx)
        mode = Mode.checker(ctx.relations.get(rel).arity)
        derived = resolve_compiled(ctx, CHECKER, rel, mode)
        gd, pd = w.property_fn(
            getattr(mod, gen_name), derived, getattr(mod, impl_name)
        )
        gh, ph = w.property_fn(
            getattr(mod, gen_name), getattr(mod, hand_name),
            getattr(mod, impl_name),
        )
        run_property(gh, ph, FIG3_TESTS, 11)  # warm both paths
        run_property(gd, pd, FIG3_TESTS, 11)
        th = td = float("inf")
        for _ in range(REPEATS):  # interleave to cancel machine drift
            t0 = time.process_time()
            run_property(gh, ph, FIG3_TESTS, 11)
            th = min(th, time.process_time() - t0)
            t0 = time.process_time()
            run_property(gd, pd, FIG3_TESTS, 11)
            td = min(td, time.process_time() - t0)
        deltas[name] = (th / td - 1) * 100
    return deltas


# -- reporting / acceptance --------------------------------------------------


def _row(label, t_base, t_new, metric):
    ratio = t_base / t_new if t_new else float("inf")
    print(
        f"[bench_specialize] {label:26s} baseline {t_base * 1e3:9.1f} ms"
        f"   candidate {t_new * 1e3:9.1f} ms   {metric} {ratio:5.2f}x"
    )
    return ratio


def run_all(verbose: bool = True):
    results = {}
    wl = bst_workload()
    t_plain, t_spec = bench_spec_vs_boxed(wl)
    results["spec BST"] = t_plain / t_spec
    if verbose:
        _row(f"spec on/off {wl.name}", t_plain, t_spec, "speedup")
    t_pr5, t_off = bench_disabled_vs_pr5(wl)
    results["legacy BST"] = t_off / t_pr5
    if verbose:
        _row(f"off vs pr5  {wl.name}", t_pr5, t_off, "pr5/live")
    swl = stlc_workload()
    t_pr6, t_on = bench_func_vs_pr6(swl)
    results["func STLC"] = t_pr6 / t_on
    if verbose:
        _row(f"func vs pr6 {swl.name}", t_pr6, t_on, "speedup")
    t_pr6_off, t_off6 = bench_disabled_vs_pr6(swl)
    results["legacy6 STLC"] = t_off6 / t_pr6_off
    if verbose:
        _row(f"off vs pr6  {swl.name}", t_pr6_off, t_off6, "pr6/live")
    for case, delta in bench_fig3_deltas().items():
        results[f"fig3 {case}"] = delta
        if verbose:
            print(
                f"[bench_specialize] Fig3 {case:5s} derived vs "
                f"handwritten: {delta:+.1f}%"
            )
    return results


# -- pytest entry points -----------------------------------------------------


def test_specialization_speedup_bst():
    t_plain, t_spec = bench_spec_vs_boxed(bst_workload())
    assert t_plain / t_spec >= SPEC_BAR, (
        f"specialization speedup only {t_plain / t_spec:.2f}x "
        f"(bar {SPEC_BAR}x)"
    )


def test_disabled_pass_costs_nothing():
    t_pr5, t_off = bench_disabled_vs_pr5(bst_workload())
    assert t_off / t_pr5 <= LEGACY_BAR, (
        f"specialization-off emitter {t_off / t_pr5:.2f}x the frozen "
        f"PR-5 emitter (bar {LEGACY_BAR}x)"
    )


def test_functionalization_speedup_stlc():
    t_pr6, t_on = bench_func_vs_pr6(stlc_workload())
    assert t_pr6 / t_on >= FUNC_BAR, (
        f"functionalization speedup only {t_pr6 / t_on:.2f}x on the "
        f"STLC typing checker (bar {FUNC_BAR}x)"
    )


def test_disabled_functionalization_costs_nothing():
    t_pr6, t_off = bench_disabled_vs_pr6(stlc_workload())
    assert t_off / t_pr6 <= LEGACY_BAR, (
        f"functionalization-off emitter {t_off / t_pr6:.2f}x the frozen "
        f"PR-6 emitter (bar {LEGACY_BAR}x)"
    )


def test_fig3_deltas_report():
    deltas = bench_fig3_deltas()
    for case, delta in deltas.items():
        print(f"[bench_specialize] Fig3 {case} delta {delta:+.1f}%")
    # Identical-verdict property is asserted inside run_property (a
    # failing derived verdict raises); here we only require the rates
    # to be finite and the BST gap to stay far from the pre-pass
    # -50% regime even on noisy runners.
    assert all(d == d for d in deltas.values())
    if not QUICK:
        assert deltas["BST"] > -35.0, (
            f"BST derived-vs-handwritten delta {deltas['BST']:+.1f}% "
            "regressed toward the pre-specialization -50% regime"
        )


if __name__ == "__main__":
    from benchmarks.benchjson import emit

    emit("specialize", run_all())
