"""Code generation: compile schedules to Python source.

The paper's plugin emits Gallina *code* for each derived computation;
the interpreters in this package instead walk the schedule IR.  This
module closes the loop: it compiles a schedule into a dedicated Python
function (built with ``compile``/``exec``), eliminating the interpretive
overhead — the backend used by the Figure 3 benchmarks, with the
interpreter kept as the ablation baseline.

Compilation scheme (checker):

* the fixpoint becomes a Python function ``rec(size, top_size, *ins)``;
* each handler becomes a flat function: the conclusion pattern match
  compiles to ``.ctor`` tests and argument projections, ``.&&`` chains
  to early returns, and each ``bindEC`` enumeration to a ``for`` loop;
* one ``_incomplete`` flag per handler reproduces the nested-``bindEC``
  fuel accounting exactly (a branch that ends without success inside a
  loop ``continue``s; the handler returns ``Some false`` only when the
  flag stayed clear).

Enumerators compile to Python generator functions (``yield`` /
``yield from``), generators to single-sample recursive functions with
the weighted-backtrack loop at the top.  External instances are
resolved at compile time through the registry (with the ``compiled``
backend preferred, so whole dependency trees compile together).
"""

from __future__ import annotations

from typing import Any

from repro.core.context import Context
from repro.core.terms import Ctor, Fun, Term, Var, free_vars, term_to_value
from repro.core.types import TypeExpr, mangle
from repro.core.values import Value
from repro.producers.combinators import _enum_values, _gen_value, slice_exhaustive
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE, negate
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.derive.schedule import (
    Handler,
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Names:
    """Maps rule variables to valid, unique Python identifiers."""

    def __init__(self) -> None:
        self.mapping: dict[str, str] = {}
        self.used: set[str] = set()
        self.counter = 0

    def var(self, name: str) -> str:
        if name not in self.mapping:
            base = "v_" + "".join(
                c if c.isalnum() or c == "_" else "_" for c in name
            )
            candidate = base
            while candidate in self.used:
                self.counter += 1
                candidate = f"{base}_{self.counter}"
            self.used.add(candidate)
            self.mapping[name] = candidate
        return self.mapping[name]

    def fresh(self, stem: str) -> str:
        self.counter += 1
        candidate = f"{stem}_{self.counter}"
        while candidate in self.used:
            self.counter += 1
            candidate = f"{stem}_{self.counter}"
        self.used.add(candidate)
        return candidate


class _Compiler:
    def __init__(self, ctx: Context, schedule: Schedule, kind: str) -> None:
        self.ctx = ctx
        self.schedule = schedule
        self.kind = kind  # 'checker' | 'enum' | 'gen'
        self.globals: dict[str, Any] = {
            "Value": Value,
            "SOME_TRUE": SOME_TRUE,
            "SOME_FALSE": SOME_FALSE,
            "NONE_OB": NONE_OB,
            "OUT_OF_FUEL": OUT_OF_FUEL,
            "FAIL": FAIL,
            "_negate": negate,
        }
        self._const_cache: dict[Value, str] = {}
        self._counter = 0

    # -- helpers -----------------------------------------------------------------

    def _bind_global(self, stem: str, obj: Any) -> str:
        self._counter += 1
        name = f"{stem}_{self._counter}"
        self.globals[name] = obj
        return name

    def constant(self, value: Value) -> str:
        if value not in self._const_cache:
            self._const_cache[value] = self._bind_global("_const", value)
        return self._const_cache[value]

    def _is_ground_ctor(self, t: Term) -> bool:
        if isinstance(t, Ctor):
            return all(self._is_ground_ctor(a) for a in t.args)
        return False

    def expr(self, t: Term, names: _Names) -> str:
        """Compile a term to a Python expression over bound locals."""
        if isinstance(t, Var):
            return names.var(t.name)
        if self._is_ground_ctor(t):
            return self.constant(term_to_value(t))
        args = ", ".join(self.expr(a, names) for a in t.args)
        if isinstance(t, Ctor):
            trailing = "," if len(t.args) == 1 else ""
            return f"Value({t.name!r}, ({args}{trailing}))"
        impl = self.ctx.functions.require(t.name).impl
        fn_name = self._bind_global(f"_f_{t.name}", impl)
        return f"{fn_name}({args})"

    def match_pattern(
        self,
        em: _Emitter,
        scrutinee: str,
        pattern: Term,
        names: _Names,
        binds: frozenset[str],
        fail: str,
    ) -> None:
        """Emit a pattern match of *scrutinee* (a local holding a
        Value) against *pattern*; variables in *binds* are bound, other
        variables and function calls are compared."""
        if isinstance(pattern, Var):
            if pattern.name in binds and pattern.name not in names.mapping:
                em.emit(f"{names.var(pattern.name)} = {scrutinee}")
            else:
                em.emit(f"if {names.var(pattern.name)} != {scrutinee}:")
                em.indent += 1
                em.emit(fail)
                em.indent -= 1
            return
        if isinstance(pattern, Fun):
            em.emit(f"if {self.expr(pattern, names)} != {scrutinee}:")
            em.indent += 1
            em.emit(fail)
            em.indent -= 1
            return
        if self._is_ground_ctor(pattern):
            em.emit(f"if {scrutinee} != {self.constant(term_to_value(pattern))}:")
            em.indent += 1
            em.emit(fail)
            em.indent -= 1
            return
        em.emit(f"if {scrutinee}.ctor != {pattern.name!r}:")
        em.indent += 1
        em.emit(fail)
        em.indent -= 1
        for i, sub in enumerate(pattern.args):
            if isinstance(sub, Var) and sub.name in binds and sub.name not in names.mapping:
                em.emit(f"{names.var(sub.name)} = {scrutinee}.args[{i}]")
                continue
            sub_name = names.fresh("_s")
            em.emit(f"{sub_name} = {scrutinee}.args[{i}]")
            self.match_pattern(em, sub_name, sub, names, binds, fail)

    # -- instance resolution at compile time -----------------------------------------

    def checker_fn(self, rel: str):
        from repro.derive.instances import resolve_compiled_checker

        return resolve_compiled_checker(self.ctx, rel)

    def producer_fn(self, rel: str, mode) -> Any:
        from repro.derive.instances import ENUM, GEN, resolve_compiled

        kind = ENUM if self.kind in ("checker", "enum") else GEN
        return resolve_compiled(self.ctx, kind, rel, mode)

    # -- per-kind compilation ---------------------------------------------------------

    def compile(self):
        em = _Emitter()
        handler_names = []
        for index, handler in enumerate(self.schedule.handlers):
            name = f"_h_{index}"
            handler_names.append(name)
            if self.kind == "checker":
                self._emit_checker_handler(em, name, handler)
            elif self.kind == "enum":
                self._emit_enum_handler(em, name, handler)
            else:
                self._emit_gen_handler(em, name, handler)
            em.emit()
        self._emit_top(em, handler_names)
        source = em.source()
        code = compile(source, f"<derived {self.kind} {self.schedule.rel}>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        rec = namespace["rec"]
        rec.__derived_source__ = source
        return rec

    def _ins_params(self) -> list[str]:
        return [f"_in{i}" for i in range(len(self.schedule.mode.ins))]

    # .. checker ..................................................................

    def _emit_checker_handler(self, em: _Emitter, name: str, handler: Handler) -> None:
        ins = self._ins_params()
        em.emit(f"def {name}(_size1, _top, {', '.join(ins) or '*_'}):")
        em.indent += 1
        names = _Names()
        for i, pattern in enumerate(handler.in_patterns):
            self.match_pattern(
                em, f"_in{i}", pattern, names,
                frozenset(free_vars(pattern)), "return SOME_FALSE",
            )
        em.emit("_inc = False")
        self._emit_checker_steps(em, handler.steps, 0, names, depth=0)
        em.emit("return NONE_OB if _inc else SOME_FALSE")
        em.indent -= 1

    def _emit_checker_steps(
        self, em: _Emitter, steps, i: int, names: _Names, depth: int
    ) -> None:
        fail = "return SOME_FALSE" if depth == 0 else "continue"
        if i == len(steps):
            em.emit("return SOME_TRUE")
            return
        step = steps[i]
        if isinstance(step, SAssign):
            em.emit(f"{names.var(step.var)} = {self.expr(step.term, names)}")
            self._emit_checker_steps(em, steps, i + 1, names, depth)
            return
        if isinstance(step, SEqCheck):
            op = "==" if step.negated else "!="
            em.emit(
                f"if {self.expr(step.lhs, names)} {op} "
                f"{self.expr(step.rhs, names)}:"
            )
            em.indent += 1
            em.emit(fail)
            em.indent -= 1
            self._emit_checker_steps(em, steps, i + 1, names, depth)
            return
        if isinstance(step, SMatch):
            scrutinee = names.fresh("_m")
            em.emit(f"{scrutinee} = {self.expr(step.scrutinee, names)}")
            self.match_pattern(em, scrutinee, step.pattern, names, step.binds, fail)
            self._emit_checker_steps(em, steps, i + 1, names, depth)
            return
        if isinstance(step, (SRecCheck, SCheckCall)):
            r = names.fresh("_r")
            args = ", ".join(self.expr(a, names) for a in step.args)
            trailing = "," if len(step.args) == 1 else ""
            if isinstance(step, SRecCheck):
                em.emit(f"{r} = rec(_size1, _top, {args})")
            else:
                fn = self._bind_global(
                    f"_chk_{step.rel}", self.checker_fn(step.rel)
                )
                em.emit(f"{r} = {fn}(_top, ({args}{trailing}))")
                if step.negated:
                    em.emit(f"{r} = _negate({r})")
            if depth == 0:
                # Straight-line `.&&`: None propagates as None.
                em.emit(f"if {r} is NONE_OB:")
                em.indent += 1
                em.emit("return NONE_OB")
                em.indent -= 1
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                em.emit("return SOME_FALSE")
                em.indent -= 1
            else:
                # Inside an enumeration loop: a None kills this branch
                # but taints the search (bindEC's accounting).
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"if {r} is NONE_OB:")
                em.indent += 1
                em.emit("_inc = True")
                em.indent -= 1
                em.emit(fail)
                em.indent -= 1
            self._emit_checker_steps(em, steps, i + 1, names, depth)
            return
        if isinstance(step, SProduce):
            item = names.fresh("_it")
            ins = ", ".join(self.expr(a, names) for a in step.in_args)
            trailing = "," if len(step.in_args) == 1 else ""
            assert not step.recursive  # checker schedules: external only
            fn = self._bind_global(
                f"_enum_{step.rel}", self.producer_fn(step.rel, step.mode)
            )
            em.emit(f"for {item} in {fn}(_top, ({ins}{trailing})):")
            em.indent += 1
            em.emit(f"if {item} is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("_inc = True")
            em.emit("continue")
            em.indent -= 1
            for pos, bind in enumerate(step.binds):
                em.emit(f"{names.var(bind)} = {item}[{pos}]")
            self._emit_checker_steps(em, steps, i + 1, names, depth + 1)
            em.indent -= 1
            return
        if isinstance(step, SInstantiate):
            item = names.var(step.var)
            enum_fn = self._bind_global(
                "_arb", _make_arbitrary_enum(self.ctx, step.ty)
            )
            em.emit(f"for {item} in {enum_fn}(_top):")
            em.indent += 1
            em.emit(f"if {item} is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("_inc = True")
            em.emit("continue")
            em.indent -= 1
            self._emit_checker_steps(em, steps, i + 1, names, depth + 1)
            em.indent -= 1
            return
        raise AssertionError(f"unknown step {step!r}")

    def _emit_top(self, em: _Emitter, handler_names: list[str]) -> None:
        ins = self._ins_params()
        params = ", ".join(ins)
        recursive = [
            n
            for n, h in zip(handler_names, self.schedule.handlers)
            if h.recursive
        ]
        base = [
            n
            for n, h in zip(handler_names, self.schedule.handlers)
            if not h.recursive
        ]
        if self.kind == "checker":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            em.emit("_none = False")
            em.emit("if _size == 0:")
            em.indent += 1
            for n in base:
                r = f"_r{n[3:]}"
                em.emit(f"{r} = {n}(None, _top{', ' if params else ''}{params})")
                em.emit(f"if {r} is SOME_TRUE: return SOME_TRUE")
                em.emit(f"if {r} is NONE_OB: _none = True")
            if recursive:
                em.emit("_none = True")
            em.emit("return NONE_OB if _none else SOME_FALSE")
            em.indent -= 1
            em.emit("_size1 = _size - 1")
            for n in handler_names:
                r = f"_r{n[3:]}"
                em.emit(f"{r} = {n}(_size1, _top{', ' if params else ''}{params})")
                em.emit(f"if {r} is SOME_TRUE: return SOME_TRUE")
                em.emit(f"if {r} is NONE_OB: _none = True")
            em.emit("return NONE_OB if _none else SOME_FALSE")
            em.indent -= 1
        elif self.kind == "enum":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            em.emit("_fuel = False")
            em.emit("if _size == 0:")
            em.indent += 1
            for n in base:
                em.emit(f"for _x in {n}(None, _top{', ' if params else ''}{params}):")
                em.indent += 1
                em.emit("if _x is OUT_OF_FUEL: _fuel = True")
                em.emit("else: yield _x")
                em.indent -= 1
            if recursive:
                em.emit("_fuel = True")
            em.emit("if _fuel: yield OUT_OF_FUEL")
            em.emit("return")
            em.indent -= 1
            em.emit("_size1 = _size - 1")
            for n in handler_names:
                em.emit(f"for _x in {n}(_size1, _top{', ' if params else ''}{params}):")
                em.indent += 1
                em.emit("if _x is OUT_OF_FUEL: _fuel = True")
                em.emit("else: yield _x")
                em.indent -= 1
            em.emit("if _fuel: yield OUT_OF_FUEL")
            em.indent -= 1
        else:  # gen
            em.emit("def rec(_size, _top, _ins, _rng):")
            em.indent += 1
            if params:
                comma = "," if len(ins) == 1 else ""
                em.emit(f"{params}{comma} = _ins")
            em.emit("if _size == 0:")
            em.indent += 1
            em.emit(f"_live = [[h, 2, 1] for h in ({', '.join(base)},)]"
                    if base else "_live = []")
            em.emit("_size1 = None")
            em.emit(f"_fuel = {bool(recursive)}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            entries = ", ".join(
                f"[{n}, 2, {'_size' if h.recursive else 1}]"
                for n, h in zip(handler_names, self.schedule.handlers)
            )
            em.emit(f"_live = [{entries}]")
            em.emit("_size1 = _size - 1")
            em.emit("_fuel = False")
            em.indent -= 1
            em.emit("while _live:")
            em.indent += 1
            em.emit("_total = 0")
            em.emit("for _e in _live: _total += _e[2]")
            em.emit("_pick = _rng.randrange(_total)")
            em.emit("for _e in _live:")
            em.indent += 1
            em.emit("if _pick < _e[2]: break")
            em.emit("_pick -= _e[2]")
            em.indent -= 1
            args = f", {params}" if params else ""
            em.emit(f"_res = _e[0](_size1, _top, _rng{args})")
            em.emit("if _res is FAIL:")
            em.indent += 1
            em.emit("pass")
            em.indent -= 1
            em.emit("elif _res is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("_fuel = True")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit("return _res")
            em.indent -= 1
            em.emit("_e[1] -= 1")
            em.emit("if _e[1] <= 0: _live.remove(_e)")
            em.indent -= 1
            em.emit("return OUT_OF_FUEL if _fuel else FAIL")
            em.indent -= 1

    # .. enumerator ..............................................................

    def _emit_enum_handler(self, em: _Emitter, name: str, handler: Handler) -> None:
        ins = self._ins_params()
        em.emit(f"def {name}(_size1, _top, {', '.join(ins) or '*_'}):")
        em.indent += 1
        names = _Names()
        for i, pattern in enumerate(handler.in_patterns):
            self.match_pattern(
                em, f"_in{i}", pattern, names,
                frozenset(free_vars(pattern)), "return",
            )
        self._emit_enum_steps(em, handler, 0, names, depth=0)
        em.indent -= 1

    def _emit_enum_steps(
        self, em: _Emitter, handler: Handler, i: int, names: _Names, depth: int
    ) -> None:
        fail = "return" if depth == 0 else "continue"
        steps = handler.steps
        if i == len(steps):
            outs = ", ".join(self.expr(t, names) for t in handler.out_terms)
            trailing = "," if len(handler.out_terms) == 1 else ""
            em.emit(f"yield ({outs}{trailing})")
            return
        step = steps[i]
        if isinstance(step, SAssign):
            em.emit(f"{names.var(step.var)} = {self.expr(step.term, names)}")
            self._emit_enum_steps(em, handler, i + 1, names, depth)
            return
        if isinstance(step, SEqCheck):
            op = "==" if step.negated else "!="
            em.emit(
                f"if {self.expr(step.lhs, names)} {op} "
                f"{self.expr(step.rhs, names)}:"
            )
            em.indent += 1
            em.emit(fail)
            em.indent -= 1
            self._emit_enum_steps(em, handler, i + 1, names, depth)
            return
        if isinstance(step, SMatch):
            scrutinee = names.fresh("_m")
            em.emit(f"{scrutinee} = {self.expr(step.scrutinee, names)}")
            self.match_pattern(em, scrutinee, step.pattern, names, step.binds, fail)
            self._emit_enum_steps(em, handler, i + 1, names, depth)
            return
        if isinstance(step, SCheckCall):
            r = names.fresh("_r")
            args = ", ".join(self.expr(a, names) for a in step.args)
            trailing = "," if len(step.args) == 1 else ""
            fn = self._bind_global(f"_chk_{step.rel}", self.checker_fn(step.rel))
            em.emit(f"{r} = {fn}(_top, ({args}{trailing}))")
            if step.negated:
                em.emit(f"{r} = _negate({r})")
            em.emit(f"if {r} is not SOME_TRUE:")
            em.indent += 1
            em.emit(f"if {r} is NONE_OB:")
            em.indent += 1
            em.emit("yield OUT_OF_FUEL")
            em.indent -= 1
            em.emit(fail)
            em.indent -= 1
            self._emit_enum_steps(em, handler, i + 1, names, depth)
            return
        if isinstance(step, SProduce):
            item = names.fresh("_it")
            ins = ", ".join(self.expr(a, names) for a in step.in_args)
            trailing = "," if len(step.in_args) == 1 else ""
            if step.recursive:
                source = f"rec(_size1, _top, {ins})"
            else:
                fn = self._bind_global(
                    f"_enum_{step.rel}", self.producer_fn(step.rel, step.mode)
                )
                source = f"{fn}(_top, ({ins}{trailing}))"
            em.emit(f"for {item} in {source}:")
            em.indent += 1
            em.emit(f"if {item} is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("yield OUT_OF_FUEL")
            em.emit("continue")
            em.indent -= 1
            for pos, bind in enumerate(step.binds):
                em.emit(f"{names.var(bind)} = {item}[{pos}]")
            self._emit_enum_steps(em, handler, i + 1, names, depth + 1)
            em.indent -= 1
            return
        if isinstance(step, SInstantiate):
            item = names.var(step.var)
            enum_fn = self._bind_global(
                "_arb", _make_arbitrary_enum(self.ctx, step.ty)
            )
            em.emit(f"for {item} in {enum_fn}(_top):")
            em.indent += 1
            em.emit(f"if {item} is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("yield OUT_OF_FUEL")
            em.emit("continue")
            em.indent -= 1
            self._emit_enum_steps(em, handler, i + 1, names, depth + 1)
            em.indent -= 1
            return
        raise AssertionError(f"unknown step {step!r}")

    # .. generator ...............................................................

    def _emit_gen_handler(self, em: _Emitter, name: str, handler: Handler) -> None:
        ins = self._ins_params()
        extra = f", {', '.join(ins)}" if ins else ""
        em.emit(f"def {name}(_size1, _top, _rng{extra}):")
        em.indent += 1
        names = _Names()
        for i, pattern in enumerate(handler.in_patterns):
            self.match_pattern(
                em, f"_in{i}", pattern, names,
                frozenset(free_vars(pattern)), "return FAIL",
            )
        for step in handler.steps:
            if isinstance(step, SAssign):
                em.emit(f"{names.var(step.var)} = {self.expr(step.term, names)}")
            elif isinstance(step, SEqCheck):
                op = "==" if step.negated else "!="
                em.emit(
                    f"if {self.expr(step.lhs, names)} {op} "
                    f"{self.expr(step.rhs, names)}:"
                )
                em.indent += 1
                em.emit("return FAIL")
                em.indent -= 1
            elif isinstance(step, SMatch):
                scrutinee = names.fresh("_m")
                em.emit(f"{scrutinee} = {self.expr(step.scrutinee, names)}")
                self.match_pattern(
                    em, scrutinee, step.pattern, names, step.binds, "return FAIL"
                )
            elif isinstance(step, SCheckCall):
                r = names.fresh("_r")
                args = ", ".join(self.expr(a, names) for a in step.args)
                trailing = "," if len(step.args) == 1 else ""
                fn = self._bind_global(f"_chk_{step.rel}", self.checker_fn(step.rel))
                em.emit(f"{r} = {fn}(_top, ({args}{trailing}))")
                if step.negated:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"return OUT_OF_FUEL if {r} is NONE_OB else FAIL")
                em.indent -= 1
            elif isinstance(step, SProduce):
                item = names.fresh("_it")
                ins_expr = ", ".join(self.expr(a, names) for a in step.in_args)
                trailing = "," if len(step.in_args) == 1 else ""
                if step.recursive:
                    em.emit(
                        f"{item} = rec(_size1, _top, ({ins_expr}{trailing}), _rng)"
                    )
                else:
                    fn = self._bind_global(
                        f"_gen_{step.rel}", self.producer_fn(step.rel, step.mode)
                    )
                    em.emit(f"{item} = {fn}(_top, ({ins_expr}{trailing}), _rng)")
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
                for pos, bind in enumerate(step.binds):
                    em.emit(f"{names.var(bind)} = {item}[{pos}]")
            elif isinstance(step, SInstantiate):
                gen_fn = self._bind_global(
                    "_arbg", _make_arbitrary_gen(self.ctx, step.ty)
                )
                item = names.var(step.var)
                em.emit(f"{item} = {gen_fn}(_top, _rng)")
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
            else:
                raise AssertionError(f"unknown step {step!r}")
        outs = ", ".join(self.expr(t, names) for t in handler.out_terms)
        trailing = "," if len(handler.out_terms) == 1 else ""
        em.emit(f"return ({outs}{trailing})")
        em.indent -= 1


def _make_arbitrary_enum(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int):
        yield from _enum_values(ctx, ty, fuel)
        if not slice_exhaustive(ctx, ty, fuel):
            yield OUT_OF_FUEL

    arbitrary.__name__ = f"arbitrary_{mangle(ty)}"
    return arbitrary


def _make_arbitrary_gen(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int, rng):
        return _gen_value(ctx, ty, fuel, rng)

    arbitrary.__name__ = f"arbitrary_gen_{mangle(ty)}"
    return arbitrary


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------

def compile_checker(ctx: Context, schedule: Schedule):
    """Compile a checker schedule to ``fn(fuel, args) -> OptionBool``
    (the internal instance convention)."""
    rec = _Compiler(ctx, schedule, "checker").compile()

    def check(fuel: int, args: tuple) -> Any:
        return rec(fuel, fuel, *args)

    check.__wrapped_rec__ = rec
    check.__derived_source__ = rec.__derived_source__
    return check


def compile_enumerator(ctx: Context, schedule: Schedule):
    """Compile an enum schedule to ``fn(fuel, ins) -> iterator``."""
    rec = _Compiler(ctx, schedule, "enum").compile()

    def enum_st(fuel: int, ins: tuple):
        return rec(fuel, fuel, *ins)

    enum_st.__wrapped_rec__ = rec
    enum_st.__derived_source__ = rec.__derived_source__
    return enum_st


def compile_generator(ctx: Context, schedule: Schedule):
    """Compile a gen schedule to ``fn(fuel, ins, rng) -> tuple|marker``."""
    rec = _Compiler(ctx, schedule, "gen").compile()

    def gen_st(fuel: int, ins: tuple, rng):
        return rec(fuel, fuel, ins, rng)

    gen_st.__wrapped_rec__ = rec
    gen_st.__derived_source__ = rec.__derived_source__
    return gen_st
