"""Runtime support shared by the schedule interpreters.

Interpreters keep a per-handler environment mapping rule variables to
values.  This module provides term evaluation under such environments
and the "match with known variables" operation: patterns emitted by
the scheduler can mix *binding* occurrences (variables unknown at that
program point) with *checking* occurrences (variables already bound,
and function calls over them), so matching both binds and compares.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping

from repro.core.context import Context
from repro.core.errors import EvaluationError
from repro.core.terms import Ctor, Fun, Term, Var
from repro.core.values import Value


def eval_term(t: Term, env: Mapping[str, Value], ctx: Context) -> Value:
    """Evaluate *t* under *env* (all variables must be bound)."""
    if isinstance(t, Var):
        try:
            return env[t.name]
        except KeyError:
            raise EvaluationError(
                f"schedule bug: variable {t.name!r} unbound at runtime"
            ) from None
    args = tuple(eval_term(a, env, ctx) for a in t.args)
    if isinstance(t, Ctor):
        return Value(t.name, args)
    return ctx.functions.require(t.name).apply(args)


def eval_args(
    ts: tuple[Term, ...], env: Mapping[str, Value], ctx: Context
) -> tuple[Value, ...]:
    return tuple(eval_term(t, env, ctx) for t in ts)


def match_known(
    pattern: Term,
    value: Value,
    env: MutableMapping[str, Value],
    binds: frozenset[str],
    ctx: Context,
) -> bool:
    """Match *value* against *pattern*, binding variables in *binds*
    into *env* and treating all other pattern parts as equality
    constraints.  On failure *env* may hold partial bindings; callers
    operate on a copy.
    """
    if isinstance(pattern, Var):
        if pattern.name in binds and pattern.name not in env:
            env[pattern.name] = value
            return True
        bound = env.get(pattern.name)
        if bound is None:
            raise EvaluationError(
                f"schedule bug: pattern variable {pattern.name!r} neither "
                "bound nor binding"
            )
        return bound == value
    if isinstance(pattern, Fun):
        # All variables under a function call are known by
        # construction (the scheduler instantiates blocked variables),
        # so the call can be evaluated and compared.
        return eval_term(pattern, env, ctx) == value
    if pattern.name != value.ctor or len(pattern.args) != len(value.args):
        return False
    return all(
        match_known(p, v, env, binds, ctx)
        for p, v in zip(pattern.args, value.args)
    )


def match_inputs(
    patterns: tuple[Term, ...],
    values: tuple[Value, ...],
    ctx: Context,
) -> dict[str, Value] | None:
    """Match the handler's input patterns against the input values.

    Input patterns are linear constructor patterns (preprocessing
    guarantees it), so every variable is a binding occurrence.
    """
    env: dict[str, Value] = {}
    for pattern, value in zip(patterns, values):
        if not _match_linear(pattern, value, env):
            return None
    return env


def _match_linear(pattern: Term, value: Value, env: dict[str, Value]) -> bool:
    if isinstance(pattern, Var):
        env[pattern.name] = value
        return True
    if isinstance(pattern, Fun):
        raise EvaluationError(
            f"schedule bug: function call {pattern} in an input pattern"
        )
    if pattern.name != value.ctor or len(pattern.args) != len(value.args):
        return False
    return all(
        _match_linear(p, v, env) for p, v in zip(pattern.args, value.args)
    )
