"""Checker backend: interpret a schedule as a semi-decision procedure.

This is the ``option bool`` instantiation of the derived program — the
code of the paper's Figure 1, executed over the schedule IR:

* the top level is a fixpoint over ``size`` with a separate
  ``top_size`` threaded to external calls;
* at ``size = 0`` only base-constructor handlers run, plus a ``None``
  option when recursive handlers were skipped;
* handlers are combined with the ``backtracking`` combinator;
* premise steps chain through ``.&&`` (:func:`and_then`), existential
  premises run ``bindEC`` over a (derived) enumerator.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.context import Context
from repro.core.values import Value
from repro.producers.combinators import _enum_values, bind_EC, slice_exhaustive
from repro.producers.option_bool import (
    NONE_OB,
    SOME_FALSE,
    SOME_TRUE,
    OptionBool,
    and_then,
    backtracking,
    from_bool,
    negate,
)
from repro.producers.outcome import OUT_OF_FUEL
from repro.derive.memo import checker_memo_call, decide_fuel_doubling
from .runtime import eval_args, eval_term, match_inputs, match_known
from repro.derive.schedule import (
    Handler,
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)


class DerivedChecker:
    """A derived semi-decision procedure for ``P e1 .. en``.

    Calling convention: ``checker(fuel, *args) -> OptionBool`` — the
    paper's ``fun size in1 .. => rec size size in1 ..`` wrapper.
    """

    def __init__(
        self,
        ctx: Context,
        schedule: Schedule,
        group: "dict[str, Schedule] | None" = None,
    ) -> None:
        if not schedule.mode.is_checker:
            raise ValueError("DerivedChecker needs a checker-mode schedule")
        self.ctx = ctx
        self.schedule = schedule
        # Mutual-recursion extension: all schedules sharing this
        # fixpoint, keyed by relation name (always includes our own).
        self.group: dict[str, Schedule] = {schedule.rel: schedule}
        if group:
            self.group.update(group)

    def __call__(self, fuel: int, *args: Value) -> OptionBool:
        return self.check(fuel, tuple(args))

    def check(self, fuel: int, args: tuple[Value, ...]) -> OptionBool:
        """Internal calling convention (used by instance resolution).

        Top-level calls (``size == top_size``) route through the
        per-context memo table when memoization is enabled; the memo
        layer knows not to wrap this method again at the instance
        registry.
        """
        if self.ctx.caches.get("memo_enabled"):
            return checker_memo_call(
                self.ctx,
                self.schedule.rel,
                args,
                fuel,
                lambda: self.rec(fuel, fuel, args),
            )
        return self.rec(fuel, fuel, args)

    def decide(
        self, args: tuple[Value, ...], max_fuel: int = 64, start_fuel: int = 2
    ) -> OptionBool:
        """Run with doubling fuel until a definite answer (or give up
        with ``None`` at *max_fuel*).

        With memoization enabled the loop is incremental: a cached
        definite answer (at any fuel) returns immediately, and probes
        at or below the recorded ``None`` frontier short-circuit.
        """
        return decide_fuel_doubling(
            self.ctx, self.schedule.rel, self.check, args, max_fuel, start_fuel
        )

    # -- the derived fixpoint ---------------------------------------------------

    def rec(
        self,
        size: int,
        top_size: int,
        args: tuple[Value, ...],
        rel: str | None = None,
    ) -> OptionBool:
        schedule = self.group[rel] if rel is not None else self.schedule
        if size == 0:
            options = [
                self._handler_thunk(h, None, top_size, args)
                for h in schedule.base_handlers
            ]
            if schedule.has_recursive_handlers:
                options.append(lambda: NONE_OB)
            return backtracking(options)
        options = [
            self._handler_thunk(h, size - 1, top_size, args)
            for h in schedule.handlers
        ]
        return backtracking(options)

    def _handler_thunk(
        self,
        handler: Handler,
        rec_size: int | None,
        top_size: int,
        args: tuple[Value, ...],
    ):
        return lambda: self._run_handler(handler, rec_size, top_size, args)

    def _run_handler(
        self,
        handler: Handler,
        rec_size: int | None,
        top_size: int,
        args: tuple[Value, ...],
    ) -> OptionBool:
        stats = self.ctx.caches.get("derive_stats")
        if stats is not None:
            stats.handler_attempts += 1
        env = match_inputs(handler.in_patterns, args, self.ctx)
        if env is None:
            if stats is not None:
                stats.backtracks += 1
            return SOME_FALSE
        result = self._run_steps(handler.steps, 0, env, rec_size, top_size)
        if stats is not None and not result.is_true:
            stats.backtracks += 1
        return result

    def _run_steps(
        self,
        steps: tuple,
        i: int,
        env: dict[str, Value],
        rec_size: int | None,
        top_size: int,
    ) -> OptionBool:
        ctx = self.ctx
        while i < len(steps):
            step = steps[i]
            if isinstance(step, SAssign):
                env[step.var] = eval_term(step.term, env, ctx)
                i += 1
                continue
            if isinstance(step, SEqCheck):
                equal = eval_term(step.lhs, env, ctx) == eval_term(
                    step.rhs, env, ctx
                )
                if equal == step.negated:
                    return SOME_FALSE
                i += 1
                continue
            if isinstance(step, SMatch):
                value = eval_term(step.scrutinee, env, ctx)
                if not match_known(step.pattern, value, env, step.binds, ctx):
                    return SOME_FALSE
                i += 1
                continue
            if isinstance(step, SRecCheck):
                assert rec_size is not None, "recursive handler ran at size 0"
                result = self.rec(
                    rec_size, top_size, eval_args(step.args, env, ctx), step.rel
                )
                return and_then(
                    result,
                    lambda: self._run_steps(steps, i + 1, env, rec_size, top_size),
                )
            if isinstance(step, SCheckCall):
                result = self._external_check(step, env, top_size)
                return and_then(
                    result,
                    lambda: self._run_steps(steps, i + 1, env, rec_size, top_size),
                )
            if isinstance(step, SProduce):
                items = self._producer_items(step, env, rec_size, top_size)
                return bind_EC(
                    items,
                    lambda outs: self._with_outs(
                        steps, i, env, step, outs, rec_size, top_size
                    ),
                )
            if isinstance(step, SInstantiate):
                items = self._arbitrary_items(step, top_size)
                return bind_EC(
                    items,
                    lambda value: self._with_var(
                        steps, i, env, step.var, value, rec_size, top_size
                    ),
                )
            raise AssertionError(f"unknown step {step!r}")
        return SOME_TRUE

    # -- step helpers ----------------------------------------------------------------

    def _external_check(
        self, step: SCheckCall, env: dict[str, Value], top_size: int
    ) -> OptionBool:
        from repro.derive.instances import resolve_checker

        instance = resolve_checker(self.ctx, step.rel)
        result = instance.fn(top_size, eval_args(step.args, env, self.ctx))
        return negate(result) if step.negated else result

    def _producer_items(
        self,
        step: SProduce,
        env: dict[str, Value],
        rec_size: int | None,
        top_size: int,
    ) -> Iterator[Any]:
        from repro.derive.instances import ENUM, resolve

        ins = eval_args(step.in_args, env, self.ctx)
        # Checker schedules never emit recursive SProduce (a recursive
        # call would need the checker's own mode, which has no outputs).
        assert not step.recursive
        instance = resolve(self.ctx, ENUM, step.rel, step.mode)
        return instance.fn(top_size, ins)

    def _arbitrary_items(self, step: SInstantiate, top_size: int) -> Iterator[Any]:
        yield from _enum_values(self.ctx, step.ty, top_size)
        if not slice_exhaustive(self.ctx, step.ty, top_size):
            yield OUT_OF_FUEL

    def _with_outs(
        self,
        steps: tuple,
        i: int,
        env: dict[str, Value],
        step: SProduce,
        outs: tuple[Value, ...],
        rec_size: int | None,
        top_size: int,
    ) -> OptionBool:
        child = dict(env)
        for name, value in zip(step.binds, outs):
            child[name] = value
        return self._run_steps(steps, i + 1, child, rec_size, top_size)

    def _with_var(
        self,
        steps: tuple,
        i: int,
        env: dict[str, Value],
        var: str,
        value: Value,
        rec_size: int | None,
        top_size: int,
    ) -> OptionBool:
        child = dict(env)
        child[var] = value
        return self._run_steps(steps, i + 1, child, rec_size, top_size)


class HandwrittenChecker:
    """Public wrapper around a registered handwritten checker instance.

    ``derive_checker`` hands this back when the registry resolves to a
    user-supplied ``DecOpt`` instance: calls delegate to the *live*
    ``instance.fn`` (so replacements via ``register(...,
    replace=True)`` and memo wrapping both take effect), while the
    object still offers the :class:`DerivedChecker` public surface
    (``__call__``, ``check``, ``decide``).
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(self, fuel: int, *args: Value) -> OptionBool:
        return self._fn()(fuel, tuple(args))

    def check(self, fuel: int, args: tuple[Value, ...]) -> OptionBool:
        return self._fn()(fuel, tuple(args))

    def decide(
        self, args: tuple[Value, ...], max_fuel: int = 64, start_fuel: int = 2
    ) -> OptionBool:
        return decide_fuel_doubling(
            self.ctx, self.rel, self.check, args, max_fuel, start_fuel
        )

    def __repr__(self) -> str:
        return f"HandwrittenChecker({self.rel!r})"


def make_checker(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    checker = DerivedChecker(ctx, schedule)
    return checker.check
