"""Frozen pre-refactor derive backends (benchmark baseline only).

These are verbatim copies (imports adjusted) of the Schedule-walking
interpreters and the Schedule-consuming code generator as of the
commit *before* the Plan IR landed:

* ``runtime.py``        — dict-environment term evaluation / matching
* ``interp_checker.py`` — per-step ``isinstance`` checker interpreter
* ``interp_gen.py``     — per-step ``isinstance`` generator interpreter
* ``codegen.py``        — Schedule-driven Python code generator

``benchmarks/bench_plan.py`` measures the live Plan-based backends
against these to guard the refactor's speedup claims.  Nothing in
``src/`` imports this package; do not "fix" or modernize it — its
whole value is staying identical to the historical implementation.

External instances (premise checkers/enumerators) resolve through the
live registry in both baselines and candidates, so the comparison
isolates the cost of the measured relation's own execution strategy.
"""
