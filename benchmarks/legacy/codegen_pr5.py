"""Frozen PR-5 code generator (benchmark baseline only).

A verbatim copy (imports adjusted) of ``repro.derive.codegen`` as of
the commit *before* term-representation specialization landed: the
Plan-driven emitter that executes every relation over boxed
:class:`~repro.core.values.Value` terms.  ``benchmarks/
bench_specialize.py`` measures the live (specialization-aware) code
generator against this baseline to guard two claims:

* specialization is a genuine win on nat-heavy workloads (>= 2x); and
* with specialization disabled the live emitter has not regressed
  (<= 1.05x of this frozen copy).

Nothing in ``src/`` imports this module; do not "fix" or modernize it.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import Context
from repro.core.types import TypeExpr, mangle
from repro.core.values import Value
from repro.producers.combinators import _enum_values, _gen_value, slice_exhaustive
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE, negate
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.derive.plan import (
    OP_CHECK,
    OP_EVAL,
    OP_INSTANTIATE,
    OP_PRODUCE,
    OP_RECCHECK,
    OP_TESTCONST,
    OP_TESTCTOR,
    OP_TESTEQ,
    X_CONST,
    X_CTOR,
    X_SLOT,
    Plan,
    PlanHandler,
    lower_schedule,
)
from repro.derive.schedule import Schedule


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _PlanCompiler:
    def __init__(self, ctx: Context, plan: Plan, kind: str) -> None:
        self.ctx = ctx
        self.plan = plan
        self.kind = kind  # 'checker' | 'enum' | 'gen'
        self.globals: dict[str, Any] = {
            "Value": Value,
            "SOME_TRUE": SOME_TRUE,
            "SOME_FALSE": SOME_FALSE,
            "NONE_OB": NONE_OB,
            "OUT_OF_FUEL": OUT_OF_FUEL,
            "FAIL": FAIL,
            "_negate": negate,
            "_caches": ctx.caches,
        }
        self._const_cache: dict[Value, str] = {}
        self._fn_cache: dict[int, str] = {}
        self._counter = 0

    # -- helpers -----------------------------------------------------------------

    def _bind_global(self, stem: str, obj: Any) -> str:
        self._counter += 1
        name = f"{stem}_{self._counter}"
        self.globals[name] = obj
        return name

    def _bind_fn(self, stem: str, fn: Any) -> str:
        cached = self._fn_cache.get(id(fn))
        if cached is None:
            cached = self._fn_cache[id(fn)] = self._bind_global(stem, fn)
        return cached

    def constant(self, value: Value) -> str:
        if value not in self._const_cache:
            self._const_cache[value] = self._bind_global("_const", value)
        return self._const_cache[value]

    def slot(self, i: int) -> str:
        return f"_in{i}" if i < self.plan.n_ins else f"_s{i}"

    def expr(self, e: tuple) -> str:
        """Compile a lowered expression to a Python expression."""
        tag = e[0]
        if tag == X_SLOT:
            return self.slot(e[1])
        if tag == X_CONST:
            return self.constant(e[1])
        args = ", ".join(self.expr(a) for a in e[2])
        if tag == X_CTOR:
            trailing = "," if len(e[2]) == 1 else ""
            return f"Value({e[1]!r}, ({args}{trailing}))"
        fn_name = self._bind_fn(f"_f_{e[3]}", e[1])
        return f"{fn_name}({args})"

    def args_tuple(self, exprs: tuple) -> str:
        inner = ", ".join(self.expr(e) for e in exprs)
        trailing = "," if len(exprs) == 1 else ""
        return f"({inner}{trailing})"

    def _fail(self, em: _Emitter, cond: str, fail: str) -> None:
        em.emit(f"if {cond}:")
        em.indent += 1
        em.emit(fail)
        em.indent -= 1

    def _emit_test(self, em: _Emitter, op: tuple, fail: str) -> None:
        """The deterministic test ops, identical in every backend."""
        tag = op[0]
        if tag == OP_TESTCTOR:
            src = self.slot(op[1])
            self._fail(em, f"{src}.ctor != {op[2]!r}", fail)
            for k, dst in enumerate(op[3]):
                em.emit(f"{self.slot(dst)} = {src}.args[{k}]")
        elif tag == OP_TESTCONST:
            self._fail(
                em, f"{self.slot(op[1])} != {self.constant(op[2])}", fail
            )
        else:  # OP_TESTEQ
            cmp = "==" if op[3] else "!="
            self._fail(
                em, f"{self.expr(op[1])} {cmp} {self.expr(op[2])}", fail
            )

    # -- instance resolution at compile time -----------------------------------------

    def checker_fn(self, rel: str):
        from repro.derive.instances import resolve_compiled_checker

        return resolve_compiled_checker(self.ctx, rel)

    def producer_fn(self, rel: str, mode) -> Any:
        from repro.derive.instances import ENUM, GEN, resolve_compiled

        kind = ENUM if self.kind in ("checker", "enum") else GEN
        return resolve_compiled(self.ctx, kind, rel, mode)

    # -- compilation ------------------------------------------------------------------

    def compile(self):
        em = _Emitter()
        for h in self.plan.handlers:
            if self.kind == "checker":
                self._emit_checker_handler(em, h)
            elif self.kind == "enum":
                self._emit_enum_handler(em, h)
            else:
                self._emit_gen_handler(em, h)
            em.emit()
        self._emit_dispatch(em)
        self._emit_top(em)
        source = em.source()
        code = compile(source, f"<derived {self.kind} {self.plan.rel}>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        rec = namespace["rec"]
        rec.__derived_source__ = source
        return rec

    def _ins_params(self) -> list[str]:
        return [f"_in{i}" for i in range(self.plan.n_ins)]

    def _handler_params(self) -> str:
        ins = self._ins_params()
        if self.kind == "gen":
            extra = f", {', '.join(ins)}" if ins else ""
            return f"_size1, _top, _rng{extra}"
        return f"_size1, _top, {', '.join(ins) or '*_'}"

    def _call_handler(self, fn: str) -> str:
        ins = self._ins_params()
        params = ", ".join(ins)
        if self.kind == "gen":
            extra = f", {params}" if params else ""
            return f"{fn}(_sz1, _top, _rng{extra})"
        sep = ", " if params else ""
        return f"{fn}(_sz1, _top{sep}{params})"

    # .. dispatch tables .............................................................

    def _entry(self, h: PlanHandler) -> str:
        key4 = (self.kind,) + h.key3
        return f"(_h_{h.index}, {h.recursive!r}, {key4!r}, {h.cost!r})"

    def _entries(self, handlers: tuple) -> str:
        inner = ", ".join(self._entry(h) for h in handlers)
        trailing = "," if len(handlers) == 1 else ""
        return f"({inner}{trailing})"

    def _emit_dispatch(self, em: _Emitter) -> None:
        """Dispatch tables as module-level literals.  Entries are
        ``(handler_fn, recursive, key4, cost)`` so one shape serves all
        three backends (weights need ``recursive``, profiling needs the
        pre-merged trace key — the compiled twin of
        :attr:`~repro.derive.plan.PlanHandler.key_checker` and friends —
        and budget charges need the static per-attempt
        :attr:`~repro.derive.plan.PlanHandler.cost`)."""
        plan = self.plan
        if plan.dispatch_pos < 0:
            em.emit(f"_all_full = {self._entries(plan.handlers)}")
            em.emit(f"_all_base = {self._entries(plan.base)}")
            em.emit()
            return
        for name, table, default in (
            ("full", plan.full_table, plan.full_default),
            ("base", plan.base_table, plan.base_default),
        ):
            items = ", ".join(
                f"{ctor!r}: {self._entries(hs)}" for ctor, hs in table.items()
            )
            em.emit(f"_disp_{name} = {{{items}}}")
            em.emit(f"_disp_{name}_d = {self._entries(default)}")
        em.emit()

    def _emit_candidates(self, em: _Emitter, which: str) -> None:
        """Emit ``_hs = <candidates>`` for the current size branch."""
        plan = self.plan
        if plan.dispatch_pos < 0:
            em.emit(f"_hs = _all_{which}")
        else:
            scrut = f"_in{plan.dispatch_pos}"
            em.emit(
                f"_hs = _disp_{which}.get({scrut}.ctor, _disp_{which}_d)"
            )

    # .. checker ..................................................................

    def _emit_checker_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        if _has_loop_ops(h):
            # Only handlers with producer loops charge per item; the
            # budget probe is scoped to them so straightline handlers
            # stay probe-free.
            em.emit("_bud = _caches.get('derive_budget')")
        em.emit("_inc = False")
        self._emit_checker_ops(em, h.ops, 0, depth=0)
        em.emit("return NONE_OB if _inc else SOME_FALSE")
        em.indent -= 1

    def _emit_checker_ops(self, em: _Emitter, ops: tuple, i: int, depth: int) -> None:
        fail = "return SOME_FALSE" if depth == 0 else "continue"
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag in (OP_CHECK, OP_RECCHECK):
                r = f"_r{i}"
                if tag == OP_RECCHECK:
                    args = ", ".join(self.expr(e) for e in op[1])
                    em.emit(f"{r} = rec(_size1, _top, {args})")
                else:
                    fn = self._bind_fn(
                        f"_chk_{op[4]}", self.checker_fn(op[4])
                    )
                    em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                    if op[3]:
                        em.emit(f"{r} = _negate({r})")
                if depth == 0:
                    # Straight-line `.&&`: None propagates as None.
                    self._fail(em, f"{r} is NONE_OB", "return NONE_OB")
                    self._fail(em, f"{r} is not SOME_TRUE", "return SOME_FALSE")
                else:
                    # Inside an enumeration loop: a None kills this
                    # branch but taints the search (bindEC accounting).
                    em.emit(f"if {r} is not SOME_TRUE:")
                    em.indent += 1
                    self._fail(em, f"{r} is NONE_OB", "_inc = True")
                    em.emit(fail)
                    em.indent -= 1
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                assert not op[5]  # checker schedules: external only
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, "_inc = True", "break")
                em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                # Charge after the marker test: the interpreter's
                # instantiate loop sees raw values only (the fuel
                # marker lives outside its stream), so charging the
                # marker here would desynchronize the op streams.
                self._emit_loop_charge(em, "_inc = True", "break")
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        em.emit("return SOME_TRUE")

    def _emit_loop_charge(self, em: _Emitter, *stmts: str) -> None:
        """One ``charge(1)`` at a producer-loop top — the compiled twin
        of the interpreters' per-item charge, same site, same order."""
        em.emit("if _bud is not None and _bud.charge(1):")
        em.indent += 1
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    # .. enumerator ..............................................................

    def _emit_enum_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        if _has_loop_ops(h):
            em.emit("_bud = _caches.get('derive_budget')")
        self._emit_enum_ops(em, h, h.ops, 0, depth=0)
        em.indent -= 1

    def _emit_enum_ops(
        self, em: _Emitter, h: PlanHandler, ops: tuple, i: int, depth: int
    ) -> None:
        fail = "return" if depth == 0 else "continue"
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag == OP_CHECK:
                r = f"_r{i}"
                fn = self._bind_fn(f"_chk_{op[4]}", self.checker_fn(op[4]))
                em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                if op[3]:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                self._fail(em, f"{r} is NONE_OB", "yield OUT_OF_FUEL")
                em.emit(fail)
                em.indent -= 1
            elif tag == OP_RECCHECK:
                raise AssertionError(
                    "producer schedules never contain recursive checker calls"
                )
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                ins = ", ".join(self.expr(e) for e in op[3])
                if op[5]:  # recursive self-call, one level down
                    source = f"rec(_size1, _top, {ins})"
                else:
                    fn = self._bind_fn(
                        f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                    )
                    source = f"{fn}(_top, {self.args_tuple(op[3])})"
                em.emit(f"for {item} in {source}:")
                em.indent += 1
                # ``break``, not ``return``: the interpreter's charge
                # trip returns from the innermost ``_enum_ops`` frame
                # only, so outer produce loops resume with their next
                # item — exiting the whole flattened handler here would
                # drop those items and diverge under one-shot faults.
                self._emit_loop_charge(em, "yield OUT_OF_FUEL", "break")
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("yield OUT_OF_FUEL")
                em.emit("continue")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                self._emit_enum_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("yield OUT_OF_FUEL")
                em.emit("continue")
                em.indent -= 1
                # After the marker test — see the checker twin above —
                # and ``break`` for the same reason as OP_PRODUCE.
                self._emit_loop_charge(em, "yield OUT_OF_FUEL", "break")
                self._emit_enum_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        outs = ", ".join(self.expr(e) for e in h.out_exprs)
        trailing = "," if len(h.out_exprs) == 1 else ""
        em.emit(f"yield ({outs}{trailing})")

    # .. generator ...............................................................

    def _emit_gen_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        for i, op in enumerate(h.ops):
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, "return FAIL")
            elif tag == OP_CHECK:
                r = f"_r{i}"
                fn = self._bind_fn(f"_chk_{op[4]}", self.checker_fn(op[4]))
                em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                if op[3]:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"return OUT_OF_FUEL if {r} is NONE_OB else FAIL")
                em.indent -= 1
            elif tag == OP_RECCHECK:
                raise AssertionError(
                    "producer schedules never contain recursive checker calls"
                )
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                if op[5]:  # recursive self-call, one level down
                    em.emit(
                        f"{item} = rec(_size1, _top, "
                        f"{self.args_tuple(op[3])}, _rng)"
                    )
                else:
                    fn = self._bind_fn(
                        f"_gen_{op[6]}", self.producer_fn(op[6], op[7])
                    )
                    em.emit(
                        f"{item} = {fn}(_top, {self.args_tuple(op[3])}, _rng)"
                    )
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
            else:  # OP_INSTANTIATE
                gen_fn = self._bind_global(
                    "_arbg", _make_arbitrary_gen(self.ctx, op[2])
                )
                item = self.slot(op[1])
                em.emit(f"{item} = {gen_fn}(_top, _rng)")
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
        outs = ", ".join(self.expr(e) for e in h.out_exprs)
        trailing = "," if len(h.out_exprs) == 1 else ""
        em.emit(f"return ({outs}{trailing})")
        em.indent -= 1

    # .. the fixpoint .............................................................

    def _emit_entry_charge(self, em: _Emitter, *stmts: str) -> None:
        """The per-level ``charge_entry`` check — the compiled twin of
        the interpreters' fixpoint-entry charge.  *stmts* unwind to the
        backend's indefinite outcome."""
        plan = self.plan
        em.emit("if _bud is not None and _bud.charge_entry(_top - _size):")
        em.indent += 1
        em.emit(
            f"_bud.record_site({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r})"
        )
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    def _emit_handler_charge(self, em: _Emitter, *stmts: str) -> None:
        """One ``charge(cost)`` per handler attempt, before the call —
        same site and order as the interpreters."""
        plan = self.plan
        em.emit("if _bud is not None and _bud.charge(_h[3]):")
        em.indent += 1
        em.emit(
            f"_bud.record_site({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r})"
        )
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    def _emit_top(self, em: _Emitter) -> None:
        plan = self.plan
        ins = self._ins_params()
        params = ", ".join(ins)
        span_begin = (
            f"_sp = _ob.spans.begin({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r}, _size, _top)"
        )
        if self.kind == "checker":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            em.emit("_tr = _caches.get('derive_trace')")
            em.emit("_ob = _caches.get('derive_observe')")
            em.emit("_bud = _caches.get('derive_budget')")
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "if _ob is not None: _ob.end_checker(_sp, NONE_OB)",
                "return NONE_OB",
            )
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.emit(f"_none = {plan.has_recursive!r}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.emit("_none = False")
            em.indent -= 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_none = True", "break")
            em.emit(f"_r = {self._call_handler('_h[0]')}")
            em.emit("if _tr is not None:")
            em.indent += 1
            em.emit(
                "_tr.record4(_h[2], _r is SOME_TRUE, _r is NONE_OB)"
            )
            em.indent -= 1
            em.emit("if _r is SOME_TRUE:")
            em.indent += 1
            em.emit("if _ob is not None: _ob.end_checker(_sp, SOME_TRUE)")
            em.emit("return SOME_TRUE")
            em.indent -= 1
            em.emit("if _r is NONE_OB: _none = True")
            em.indent -= 1
            em.emit("_r = NONE_OB if _none else SOME_FALSE")
            em.emit("if _ob is not None: _ob.end_checker(_sp, _r)")
            em.emit("return _r")
            em.indent -= 1
        elif self.kind == "enum":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            em.emit("_tr = _caches.get('derive_trace')")
            em.emit("_ob = _caches.get('derive_observe')")
            em.emit("_bud = _caches.get('derive_budget')")
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "yield OUT_OF_FUEL",
                "if _ob is not None: _ob.end_enum(_sp, 0, True)",
                "return",
            )
            em.emit("_fuel = False")
            em.emit("_nv = 0")
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.indent -= 1
            em.emit("if _tr is None:")
            em.indent += 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit(f"for _x in {self._call_handler('_h[0]')}:")
            em.indent += 1
            em.emit("if _x is OUT_OF_FUEL: _fuel = True")
            em.emit("else: yield _x")
            em.indent -= 3
            em.emit("else:")
            em.indent += 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit("_sv = _sf = False")
            em.emit(f"for _x in {self._call_handler('_h[0]')}:")
            em.indent += 1
            em.emit("if _x is OUT_OF_FUEL: _fuel = _sf = True")
            em.emit("else:")
            em.indent += 1
            em.emit("_sv = True")
            em.emit("_nv += 1")
            em.emit("yield _x")
            em.indent -= 2
            em.emit("_tr.record4(_h[2], _sv, _sf)")
            em.indent -= 2
            if plan.has_recursive:
                em.emit("if _size == 0: _fuel = True")
            em.emit("if _fuel: yield OUT_OF_FUEL")
            em.emit("if _ob is not None: _ob.end_enum(_sp, _nv, _fuel)")
            em.indent -= 1
        else:  # gen
            em.emit("def rec(_size, _top, _ins, _rng):")
            em.indent += 1
            if params:
                comma = "," if len(ins) == 1 else ""
                em.emit(f"{params}{comma} = _ins")
            em.emit("_tr = _caches.get('derive_trace')")
            em.emit("_ob = _caches.get('derive_observe')")
            em.emit("_bud = _caches.get('derive_budget')")
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "if _ob is not None: _ob.end_gen(_sp, OUT_OF_FUEL, 0)",
                "return OUT_OF_FUEL",
            )
            em.emit("_na = 0")
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.emit(f"_fuel = {plan.has_recursive!r}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.emit("_fuel = False")
            em.indent -= 1
            em.emit(
                "_live = [[_h, 2, ((_size if _h[1] else 1) or 1)]"
                " for _h in _hs]"
            )
            em.emit("while _live:")
            em.indent += 1
            em.emit("_total = 0")
            em.emit("for _e in _live: _total += _e[2]")
            em.emit("_pick = _rng.randrange(_total)")
            em.emit("for _e in _live:")
            em.indent += 1
            em.emit("if _pick < _e[2]: break")
            em.emit("_pick -= _e[2]")
            em.indent -= 1
            em.emit("_h = _e[0]")
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit("_na += 1")
            args = f", {params}" if params else ""
            em.emit(f"_res = _h[0](_sz1, _top, _rng{args})")
            em.emit("if _res is FAIL:")
            em.indent += 1
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], False, False)")
            em.indent -= 1
            em.emit("elif _res is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("_fuel = True")
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], False, True)")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], True, False)")
            em.emit("if _ob is not None: _ob.end_gen(_sp, _res, _na)")
            em.emit("return _res")
            em.indent -= 1
            em.emit("_e[1] -= 1")
            em.emit("if _e[1] <= 0: _live.remove(_e)")
            em.indent -= 1
            em.emit("_res = OUT_OF_FUEL if _fuel else FAIL")
            em.emit("if _ob is not None: _ob.end_gen(_sp, _res, _na)")
            em.emit("return _res")
            em.indent -= 1


def _has_loop_ops(h: PlanHandler) -> bool:
    """Whether the handler contains producer loops (and so needs the
    per-item budget charge and its ``_bud`` probe)."""
    return any(op[0] in (OP_PRODUCE, OP_INSTANTIATE) for op in h.ops)


def _make_arbitrary_enum(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int):
        yield from _enum_values(ctx, ty, fuel)
        if not slice_exhaustive(ctx, ty, fuel):
            yield OUT_OF_FUEL

    arbitrary.__name__ = f"arbitrary_{mangle(ty)}"
    return arbitrary


def _make_arbitrary_gen(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int, rng):
        return _gen_value(ctx, ty, fuel, rng)

    arbitrary.__name__ = f"arbitrary_gen_{mangle(ty)}"
    return arbitrary


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------

def compile_checker(ctx: Context, schedule: Schedule):
    """Compile a checker schedule to ``fn(fuel, args) -> OptionBool``
    (the internal instance convention)."""
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "checker").compile()

    def check(fuel: int, args: tuple) -> Any:
        return rec(fuel, fuel, *args)

    check.__wrapped_rec__ = rec
    check.__derived_source__ = rec.__derived_source__
    return check


def compile_enumerator(ctx: Context, schedule: Schedule):
    """Compile an enum schedule to ``fn(fuel, ins) -> iterator``."""
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "enum").compile()

    def enum_st(fuel: int, ins: tuple):
        return rec(fuel, fuel, *ins)

    enum_st.__wrapped_rec__ = rec
    enum_st.__derived_source__ = rec.__derived_source__
    return enum_st


def compile_generator(ctx: Context, schedule: Schedule):
    """Compile a gen schedule to ``fn(fuel, ins, rng) -> tuple|marker``."""
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "gen").compile()

    def gen_st(fuel: int, ins: tuple, rng):
        return rec(fuel, fuel, ins, rng)

    gen_st.__wrapped_rec__ = rec
    gen_st.__derived_source__ = rec.__derived_source__
    return gen_st
