"""Generator backend: interpret a schedule as a constrained random
generator.

The ``G (option A)`` instantiation: same schedule, but

* ``enumerating``  →  QuickChick-style ``backtrack`` over handlers
  (weighted random choice, discarding failed options);
* the recursive calls draw randomly instead of enumerating;
* existential instantiation uses the unconstrained random generator.

A run returns one output tuple, or :data:`FAIL` (no derivation found
down the sampled path and every alternative definitively failed), or
:data:`OUT_OF_FUEL` (some alternative ran out of fuel — retrying with
a larger size may succeed).
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.context import Context
from repro.core.values import Value
from repro.producers.combinators import _gen_value
from repro.producers.option_bool import OptionBool, negate
from repro.producers.outcome import FAIL, OUT_OF_FUEL, is_value
from .runtime import eval_args, eval_term, match_inputs, match_known
from repro.derive.schedule import (
    Handler,
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)


class DerivedGenerator:
    """A derived constrained generator for ``(rel, mode)``.

    Calling convention: ``gen(fuel, *in_args, rng=...)`` returns one
    output tuple, or ``FAIL`` / ``OUT_OF_FUEL``.
    """

    def __init__(
        self, ctx: Context, schedule: Schedule, retries_per_handler: int = 2
    ) -> None:
        if schedule.mode.is_checker:
            raise ValueError("DerivedGenerator needs a producer-mode schedule")
        self.ctx = ctx
        self.schedule = schedule
        self.retries = retries_per_handler

    def __call__(
        self, fuel: int, *ins: Value, rng: random.Random | None = None
    ) -> Any:
        return self.rec(fuel, fuel, tuple(ins), rng or random.Random())

    def gen_st(
        self, fuel: int, ins: tuple[Value, ...], rng: random.Random
    ) -> Any:
        """Internal calling convention (used by instance resolution)."""
        return self.rec(fuel, fuel, ins, rng)

    def samples(
        self,
        fuel: int,
        *ins: Value,
        count: int = 100,
        seed: int | None = None,
    ) -> list[tuple[Value, ...]]:
        """Draw until *count* proper outputs were produced (markers
        dropped); gives up after ``20 * count`` attempts."""
        rng = random.Random(seed)
        out: list[tuple[Value, ...]] = []
        attempts = 0
        while len(out) < count and attempts < 20 * count:
            attempts += 1
            x = self.rec(fuel, fuel, tuple(ins), rng)
            if is_value(x):
                out.append(x)
        return out

    # -- the derived fixpoint ------------------------------------------------------

    def rec(
        self,
        size: int,
        top_size: int,
        ins: tuple[Value, ...],
        rng: random.Random,
    ) -> Any:
        if size == 0:
            handlers = list(self.schedule.base_handlers)
            rec_size = None
            # Skipped recursive handlers mean a FAIL here is not
            # definitive — report fuel exhaustion instead.
            exhausted_means_fuel = self.schedule.has_recursive_handlers
        else:
            handlers = list(self.schedule.handlers)
            rec_size = size - 1
            exhausted_means_fuel = False
        # QuickChick-style weights: recursive handlers get weight
        # proportional to the remaining size, so deep structures stay
        # likely at large sizes and recursion tapers off near 0.
        remaining = [
            [h, self.retries, (size if h.recursive else 1) or 1]
            for h in handlers
        ]
        stats = self.ctx.caches.get("derive_stats")
        saw_fuel = exhausted_means_fuel
        while remaining:
            total = sum(entry[2] for entry in remaining)
            pick = rng.randrange(total)
            entry = remaining[0]
            for candidate in remaining:
                if pick < candidate[2]:
                    entry = candidate
                    break
                pick -= candidate[2]
            if stats is not None:
                stats.handler_attempts += 1
            result = self._run_handler(entry[0], rec_size, top_size, ins, rng)
            if is_value(result):
                return result
            if stats is not None:
                stats.backtracks += 1
            if result is OUT_OF_FUEL:
                saw_fuel = True
            entry[1] -= 1
            if entry[1] <= 0:
                remaining.remove(entry)
        if stats is not None and saw_fuel:
            stats.fuel_exhaustions += 1
        return OUT_OF_FUEL if saw_fuel else FAIL

    def _run_handler(
        self,
        handler: Handler,
        rec_size: int | None,
        top_size: int,
        ins: tuple[Value, ...],
        rng: random.Random,
    ) -> Any:
        env = match_inputs(handler.in_patterns, ins, self.ctx)
        if env is None:
            return FAIL
        ctx = self.ctx
        for step in handler.steps:
            if isinstance(step, SAssign):
                env[step.var] = eval_term(step.term, env, ctx)
                continue
            if isinstance(step, SEqCheck):
                equal = eval_term(step.lhs, env, ctx) == eval_term(
                    step.rhs, env, ctx
                )
                if equal == step.negated:
                    return FAIL
                continue
            if isinstance(step, SMatch):
                value = eval_term(step.scrutinee, env, ctx)
                if not match_known(step.pattern, value, env, step.binds, ctx):
                    return FAIL
                continue
            if isinstance(step, (SCheckCall, SRecCheck)):
                result = self._check_step(step, env, top_size)
                if result.is_false:
                    return FAIL
                if result.is_none:
                    return OUT_OF_FUEL
                continue
            if isinstance(step, SProduce):
                produced = self._produce(step, env, rec_size, top_size, rng)
                if not is_value(produced):
                    return produced
                for name, value in zip(step.binds, produced):
                    env[name] = value
                continue
            if isinstance(step, SInstantiate):
                value = _gen_value(ctx, step.ty, top_size, rng)
                if not is_value(value):
                    return value
                env[step.var] = value
                continue
            raise AssertionError(f"unknown step {step!r}")
        return eval_args(handler.out_terms, env, ctx)

    # -- step helpers -------------------------------------------------------------------

    def _check_step(self, step, env: dict[str, Value], top_size: int) -> OptionBool:
        from repro.derive.instances import resolve_checker

        if isinstance(step, SRecCheck):
            raise AssertionError(
                "producer schedules never contain recursive checker calls"
            )
        instance = resolve_checker(self.ctx, step.rel)
        result = instance.fn(top_size, eval_args(step.args, env, self.ctx))
        return negate(result) if step.negated else result

    def _produce(
        self,
        step: SProduce,
        env: dict[str, Value],
        rec_size: int | None,
        top_size: int,
        rng: random.Random,
    ) -> Any:
        ins = eval_args(step.in_args, env, self.ctx)
        if step.recursive:
            assert rec_size is not None, "recursive handler ran at size 0"
            return self.rec(rec_size, top_size, ins, rng)
        from repro.derive.instances import GEN, resolve

        instance = resolve(self.ctx, GEN, step.rel, step.mode)
        return instance.fn(top_size, ins, rng)


class HandwrittenGenerator:
    """Public wrapper around a registered handwritten generator.

    ``derive_generator`` hands this back when resolution finds a
    user-supplied ``GenSizedSuchThat`` instance: all calls delegate to
    the live ``instance.fn`` while presenting the
    :class:`DerivedGenerator` public surface.
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        self.mode = instance.mode
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(
        self, fuel: int, *ins: Value, rng: random.Random | None = None
    ) -> Any:
        return self._fn()(fuel, tuple(ins), rng or random.Random())

    def gen_st(
        self, fuel: int, ins: tuple[Value, ...], rng: random.Random
    ) -> Any:
        return self._fn()(fuel, tuple(ins), rng)

    def samples(
        self,
        fuel: int,
        *ins: Value,
        count: int = 100,
        seed: int | None = None,
    ) -> list[tuple[Value, ...]]:
        rng = random.Random(seed)
        fn = self._fn()
        out: list[tuple[Value, ...]] = []
        attempts = 0
        while len(out) < count and attempts < 20 * count:
            attempts += 1
            x = fn(fuel, tuple(ins), rng)
            if is_value(x):
                out.append(x)
        return out

    def __repr__(self) -> str:
        return f"HandwrittenGenerator({self.rel!r}, {self.mode})"


def make_generator(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    gen = DerivedGenerator(ctx, schedule)
    return gen.gen_st
