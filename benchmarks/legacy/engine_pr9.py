"""Frozen PR-9 serving engine (benchmark baseline only).

A verbatim copy (imports adjusted) of ``repro.serve.engine`` as of the
commit *before* the high-availability layer: unbounded ``queue.Queue``
admission, no deadlines, no supervision — a worker that dies from a
non-``ReproError`` stays dead.  ``benchmarks/bench_admission.py``
measures the live engine with admission control *off* against this
baseline to guard the HA layer's zero-overhead bound (<= 1.05x on the
batched check workload).

Nothing in ``src/`` imports this module; do not "fix" or modernize it.
"""


from __future__ import annotations

import queue
import random
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Any, Iterable

from repro.core.context import Context
from repro.core.errors import ReproError
from repro.core.session import activate_session
from repro.derive.api import derive_checker, derive_enumerator, derive_generator
from repro.derive.memo import enable_memoization
from repro.observe.metrics import Metrics
from repro.observe.telemetry import Telemetry
from repro.producers.option_bool import NONE_OB, SOME_TRUE
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.quickchick.runner import _SEED_SOURCE
from repro.resilience.budget import budget_scope
from repro.serve.queries import CheckQuery, EnumQuery, GenQuery, GiveUp, QueryResult

_CLOSE = object()  # worker shutdown sentinel

_KINDS = {"CheckQuery": "check", "EnumQuery": "enum", "GenQuery": "gen"}

#: The per-worker counter fields ``Engine.stats()`` renders, in the
#: order of the legacy per-worker dicts.
_WORKER_FIELDS = ("queries", "batched", "gave_up", "errors")


class Engine:
    """Sessioned, batched query service over one context.

    *workers* threads each own a session (``serve-<i>``); *fuel* is
    the default fuel for queries created by the CLI, not a limit on
    query-carried fuel.  *max_ops* / *deadline_seconds* are the
    **default per-query budget** (``None`` = ungoverned); a query's
    own ``max_ops``/``deadline_seconds`` override them.  With
    ``memoize=True`` every worker session runs with memoization on —
    per-worker memo shards, no cross-worker locking.  *batch_max*
    bounds how many queued queries one worker drains per chunk (the
    batching window).

    *telemetry* switches on serving-layer observability: pass ``True``
    for a fresh :class:`~repro.observe.telemetry.Telemetry` with
    default sampling, or a configured instance (shareable across
    engines).  Every query then gets a campaign-unique id carried
    submit→queue→batch→execute, per-(kind, rel) latency histograms,
    queue-wait and batch-size distributions, queue-depth gauges, and —
    for sampled or slow queries only — the full span tree of the
    execution attached to its :class:`~repro.observe.telemetry.
    QueryEvent`.  Telemetry off costs a couple of locked counter
    bumps per query (the ``bench_telemetry.py`` bars pin both modes).

    All engine counters live in one locked
    :class:`~repro.observe.metrics.Metrics` registry (the telemetry's
    when on, a private one when off); :meth:`stats` renders the legacy
    per-worker dict shape as a *view* of that registry, so worker
    threads never mutate shared dicts unlocked.
    """

    def __init__(
        self,
        ctx: Context,
        *,
        workers: int = 1,
        max_ops: "int | None" = None,
        deadline_seconds: "float | None" = None,
        memoize: bool = False,
        batch: bool = True,
        batch_max: int = 64,
        telemetry: "Telemetry | bool | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.ctx = ctx
        self.workers = workers
        self.max_ops = max_ops
        self.deadline_seconds = deadline_seconds
        self.memoize = memoize
        self.batch = batch
        self.batch_max = max(1, batch_max)
        if telemetry is True:
            telemetry = Telemetry()
        elif telemetry is False:
            telemetry = None
        self.telemetry: "Telemetry | None" = telemetry
        if telemetry is not None:
            self._metrics = telemetry.metrics
            self._lock = telemetry.lock
        else:
            self._metrics = Metrics()
            self._lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Engine":
        if self._started:
            return self
        self._started = True
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_main, args=(i,), name=f"repro-serve-{i}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def close(self) -> None:
        """Drain outstanding queries, then stop the workers."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for _ in self._threads:
                self._queue.put(_CLOSE)
            for t in self._threads:
                t.join()

    def __enter__(self) -> "Engine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, query) -> "Future[QueryResult]":
        """Enqueue *query*; the future resolves to its
        :class:`QueryResult` (never to an exception — failures become
        ``status="error"`` results)."""
        if self._closed:
            raise RuntimeError("engine is closed")
        if not self._started:
            self.start()
        fut: "Future[QueryResult]" = Future()
        tel = self.telemetry
        qid = tel.next_qid() if tel is not None else 0
        self._queue.put((query, fut, qid, perf_counter()))
        if tel is not None:
            tel.observe_queue_depth(self._queue.qsize())
        return fut

    def run(self, query) -> QueryResult:
        """Submit and wait."""
        return self.submit(query).result()

    def run_batch(self, queries: Iterable[Any]) -> list[QueryResult]:
        """Submit all, gather results in submission order."""
        futures = [self.submit(q) for q in queries]
        return [f.result() for f in futures]

    async def arun(self, query) -> QueryResult:
        """Await one query from asyncio without blocking the loop."""
        import asyncio

        return await asyncio.wrap_future(self.submit(query))

    async def arun_batch(self, queries: Iterable[Any]) -> list[QueryResult]:
        import asyncio

        futures = [asyncio.wrap_future(self.submit(q)) for q in queries]
        return list(await asyncio.gather(*futures))

    # -- read side -----------------------------------------------------------

    def stats(self) -> dict:
        """Per-worker served/batched/gave-up/error counts — a rendered
        view of the locked metrics registry (the legacy dict shape).
        With telemetry on, a ``"telemetry"`` key carries the full
        :meth:`~repro.observe.telemetry.Telemetry.snapshot`."""
        with self._lock:
            snap = dict(self._metrics.counters)
        out = {
            "workers": self.workers,
            "per_worker": [
                {
                    f: snap.get(f"serve.worker.{i}.{f}", 0)
                    for f in _WORKER_FIELDS
                }
                for i in range(self.workers)
            ],
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.snapshot()
        return out

    def prepare(self, queries: Iterable[Any]) -> None:
        """Derive every instance the queries will need, up front —
        first-query latency becomes load-time latency."""
        seen = set()
        for q in queries:
            key = (type(q).__name__, q.rel, getattr(q, "mode", None))
            if key in seen:
                continue
            seen.add(key)
            if isinstance(q, CheckQuery):
                derive_checker(self.ctx, q.rel)
            elif isinstance(q, EnumQuery):
                derive_enumerator(self.ctx, q.rel, q.mode)
            elif isinstance(q, GenQuery):
                derive_generator(self.ctx, q.rel, q.mode)

    # -- worker side ---------------------------------------------------------

    def _worker_main(self, index: int) -> None:
        ctx = self.ctx
        # Bind this thread's session for the thread's whole life; the
        # binding is thread-local (contextvars), so each worker sees
        # only its own state.
        activate_session(ctx, ctx.new_session(f"serve-{index}"))
        if self.memoize:
            with ctx._derive_lock:
                # Wrapping instances mutates the shared table
                # (idempotently); serialize it.  The memo *flag* and
                # tables land in this worker's session.
                enable_memoization(ctx)
        q = self._queue
        while True:
            item = q.get()
            if item is _CLOSE:
                return
            chunk = [item]
            if self.batch:
                while len(chunk) < self.batch_max:
                    try:
                        nxt = q.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _CLOSE:
                        q.put(_CLOSE)  # keep the shutdown token live
                        break
                    chunk.append(nxt)
            try:
                self._serve_chunk(index, chunk)
            except BaseException as e:  # never strand a Future
                for query, fut, qid, t_sub in chunk:
                    if not fut.done():
                        fut.set_result(
                            QueryResult(
                                query, "error",
                                error=f"worker crashed: {e!r}",
                                worker=index, qid=qid,
                            )
                        )
                raise

    def _serve_chunk(self, index: int, chunk: list) -> None:
        # Group budget-free check queries per (rel, fuel) for the
        # amortized batch entry; everything else runs singly.  A query
        # sampled for tracing is pulled out of its batch group — span
        # capture needs its own execution.
        tel = self.telemetry
        groups: dict[tuple, list] = {}
        singles: list = []
        for item in chunk:
            query, fut, qid, t_sub = item
            if (
                isinstance(query, CheckQuery)
                and not self._limits(query)
                and len(chunk) > 1
                and not (
                    tel is not None
                    and tel.should_trace(qid, "check", query.rel)
                )
            ):
                groups.setdefault((query.rel, query.fuel), []).append(item)
            else:
                singles.append(item)
        for (rel, fuel), items in groups.items():
            if len(items) == 1:
                singles.extend(items)
                continue
            self._serve_check_batch(index, rel, fuel, items)
        for query, fut, qid, t_sub in singles:
            result = self._serve_one(index, query, qid=qid, t_sub=t_sub)
            fut.set_result(result)

    def _bump(self, index: int, **fields: int) -> None:
        # Telemetry-off accounting: the same locked registry stats()
        # renders, without building an event.
        with self._lock:
            c = self._metrics.counters
            for f, n in fields.items():
                key = f"serve.worker.{index}.{f}"
                c[key] = c.get(key, 0) + n

    def _serve_check_batch(
        self, index: int, rel: str, fuel: int, items: list
    ) -> None:
        t0 = perf_counter()
        n = len(items)
        tel = self.telemetry
        try:
            checker = derive_checker(self.ctx, rel)
            batch_fn = getattr(checker, "check_batch", None)
            if batch_fn is None:
                results = [
                    checker.check(fuel, tuple(q.args))
                    for q, _, _, _ in items
                ]
            else:
                results = batch_fn(
                    fuel, [tuple(q.args) for q, _, _, _ in items]
                )
        except ReproError as e:
            elapsed = (perf_counter() - t0) / n
            if tel is not None:
                tel.record_batch(
                    kind="check", rel=rel, worker=index,
                    entries=[(qid, t0 - t_sub) for _, _, qid, t_sub in items],
                    service_seconds=elapsed,
                    statuses=["error"] * n,
                    reasons=[None] * n,
                )
                with self._lock:
                    c = self._metrics.counters
                    key = f"serve.worker.{index}.errors"
                    c[key] = c.get(key, 0) + n
            else:
                self._bump(index, queries=n, errors=n)
            for query, fut, qid, t_sub in items:
                fut.set_result(
                    QueryResult(
                        query, "error", error=str(e),
                        elapsed_seconds=elapsed, worker=index,
                        qid=qid, queue_seconds=t0 - t_sub,
                    )
                )
            return
        elapsed = (perf_counter() - t0) / n
        out = []
        for (query, fut, qid, t_sub), res in zip(items, results):
            if res is NONE_OB:
                result = QueryResult(
                    query, "gave_up", give_up=GiveUp("fuel"),
                    elapsed_seconds=elapsed, worker=index, batched=True,
                    qid=qid, queue_seconds=t0 - t_sub,
                )
            else:
                result = QueryResult(
                    query, "ok", value=res is SOME_TRUE,
                    elapsed_seconds=elapsed, worker=index, batched=True,
                    qid=qid, queue_seconds=t0 - t_sub,
                )
            out.append((fut, result))
        if tel is not None:
            tel.record_batch(
                kind="check", rel=rel, worker=index,
                entries=[(qid, t0 - t_sub) for _, _, qid, t_sub in items],
                service_seconds=elapsed,
                statuses=[r.status for _, r in out],
                reasons=[
                    r.give_up.reason if r.give_up is not None else None
                    for _, r in out
                ],
            )
        else:
            gave_up = sum(1 for _, r in out if r.status == "gave_up")
            self._bump(index, queries=n, batched=n, gave_up=gave_up)
        for fut, result in out:
            fut.set_result(result)

    def _limits(self, query) -> dict:
        """The effective budget limits for *query* (empty = none)."""
        out = {}
        max_ops = query.max_ops if query.max_ops is not None else self.max_ops
        deadline = (
            query.deadline_seconds
            if query.deadline_seconds is not None
            else self.deadline_seconds
        )
        if max_ops is not None:
            out["max_ops"] = max_ops
        if deadline is not None:
            out["deadline_seconds"] = deadline
        return out

    def _run_limited(self, query) -> QueryResult:
        limits = self._limits(query)
        if not limits:
            return self._execute(query)
        with budget_scope(self.ctx, **limits) as bud:
            result = self._execute(query)
        if bud.exhausted is not None and (
            result.status == "gave_up" or result.complete is False
        ):
            # The budget (not plain fuel) is what stopped it:
            # surface the structured diagnosis, keeping any
            # partial enum answer found before the trip.
            result = QueryResult(
                query,
                "gave_up",
                value=result.value,
                complete=False if result.complete is not None else None,
                give_up=GiveUp(
                    getattr(bud.exhausted, "limit", "budget"),
                    exhausted=bud.exhausted,
                ),
            )
        return result

    def _serve_one(
        self, index: int, query, qid: int = 0, t_sub: "float | None" = None
    ) -> QueryResult:
        tel = self.telemetry
        kind = _KINDS.get(type(query).__name__, "?")
        t0 = perf_counter()
        queue_s = t0 - t_sub if t_sub is not None else 0.0
        spans = None
        try:
            if tel is not None and tel.should_trace(qid, kind, query.rel):
                from repro.observe import observe

                with observe(self.ctx, span_cap=tel.span_cap) as obs:
                    result = self._run_limited(query)
                spans = [s.as_dict() for s in obs.spans]
            else:
                result = self._run_limited(query)
        except ReproError as e:
            result = QueryResult(query, "error", error=str(e))
        result.elapsed_seconds = perf_counter() - t0
        result.worker = index
        result.qid = qid
        result.queue_seconds = queue_s
        if tel is not None:
            tel.record_query(
                qid=qid,
                kind=kind,
                rel=getattr(query, "rel", "?"),
                mode=getattr(query, "mode", ""),
                status=result.status,
                reason=(
                    result.give_up.reason
                    if result.give_up is not None
                    else None
                ),
                worker=index,
                queue_seconds=queue_s,
                service_seconds=result.elapsed_seconds,
                batch=1,
                spans=spans,
            )
        elif result.status == "gave_up":
            self._bump(index, queries=1, gave_up=1)
        elif result.status == "error":
            self._bump(index, queries=1, errors=1)
        else:
            self._bump(index, queries=1)
        return result

    def _execute(self, query) -> QueryResult:
        ctx = self.ctx
        if isinstance(query, CheckQuery):
            checker = derive_checker(ctx, query.rel)
            res = checker.check(query.fuel, tuple(query.args))
            if res is NONE_OB:
                return QueryResult(query, "gave_up", give_up=GiveUp("fuel"))
            return QueryResult(query, "ok", value=res is SOME_TRUE)
        if isinstance(query, EnumQuery):
            enum = derive_enumerator(ctx, query.rel, query.mode)
            values: list = []
            saw_fuel = truncated = False
            for x in enum.enum_st(query.fuel, tuple(query.ins)):
                if x is OUT_OF_FUEL:
                    saw_fuel = True
                    continue
                values.append(x)
                if (
                    query.max_values is not None
                    and len(values) >= query.max_values
                ):
                    truncated = True
                    break
            complete = not saw_fuel and not truncated
            if saw_fuel and not values:
                return QueryResult(
                    query, "gave_up", value=values, complete=False,
                    give_up=GiveUp("fuel"),
                )
            return QueryResult(query, "ok", value=values, complete=complete)
        if isinstance(query, GenQuery):
            gen = derive_generator(ctx, query.rel, query.mode)
            seed = (
                query.seed
                if query.seed is not None
                else _SEED_SOURCE.randrange(2**63)
            )
            res = gen.gen_st(query.fuel, tuple(query.ins), random.Random(seed))
            if res is OUT_OF_FUEL:
                return QueryResult(query, "gave_up", give_up=GiveUp("fuel"))
            if res is FAIL:
                return QueryResult(query, "gave_up", give_up=GiveUp("retries"))
            return QueryResult(query, "ok", value=res)
        return QueryResult(
            query, "error", error=f"unknown query type {type(query).__name__}"
        )
