"""Frozen PR-7 plan executor (benchmark baseline only).

A verbatim copy (imports adjusted) of ``repro.derive.exec_core`` as of
the commit *before* the session-scoped state refactor: runtime state
(stats, trace, observe hooks, budget, memo tables) still lives in the
one process-global ``ctx.caches`` dict, fetched once per fixpoint
level.  ``benchmarks/bench_serve.py`` measures the live executors
against this baseline to guard the refactor's single-caller overhead
bound (<= 1.05x).

Nothing in ``src/`` imports this module; do not "fix" or modernize it.
"""


from __future__ import annotations

import random
from typing import Any, Iterator

from repro.core.context import Context
from repro.core.values import Value
from repro.producers.combinators import _enum_values, _gen_value, slice_exhaustive
from repro.producers.option_bool import (
    NONE_OB,
    SOME_FALSE,
    SOME_TRUE,
    OptionBool,
    negate,
)
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.derive.plan import (
    OP_CHECK,
    OP_EVAL,
    OP_EVALREL,
    OP_INSTANTIATE,
    OP_PRODUCE,
    OP_RECCHECK,
    OP_TESTCONST,
    OP_TESTCTOR,
    OP_TESTEQ,
    Plan,
    PlanHandler,
)
from repro.derive.runtime import eval_expr, eval_exprs
from repro.derive.stats import STATS_KEY
from repro.derive.trace import BUDGET_KEY, OBSERVE_KEY, TRACE_KEY


def _checker_instance(ctx: Context, op: tuple):
    """The external checker instance for an ``OP_CHECK``."""
    instance = ctx.instances.get(op[1])
    if instance is None:
        from repro.derive.instances import resolve_checker

        instance = resolve_checker(ctx, op[4])
    return instance


def _enum_instance(ctx: Context, op: tuple):
    """The external enumerator instance for an ``OP_PRODUCE``."""
    instance = ctx.instances.get(op[1])
    if instance is None:
        from repro.derive.instances import ENUM, resolve

        instance = resolve(ctx, ENUM, op[6], op[7])
    return instance


def _gen_instance(ctx: Context, op: tuple):
    """The external generator instance for an ``OP_PRODUCE``."""
    instance = ctx.instances.get(op[2])
    if instance is None:
        from repro.derive.instances import GEN, resolve

        instance = resolve(ctx, GEN, op[6], op[7])
    return instance


# ---------------------------------------------------------------------------
# Checker driver (option bool).
# ---------------------------------------------------------------------------


def run_checker(
    ctx: Context,
    plans: dict,
    plan: Plan,
    size: int,
    top: int,
    args: tuple[Value, ...],
) -> OptionBool:
    """One level of the derived checker fixpoint.

    *plans* maps relation names to the plans sharing this fixpoint
    (mutual-recursion groups; always contains *plan* itself).  At size
    0 only base handlers run, and skipped recursive handlers surface as
    a ``None`` option — the paper's Figure 1 structure.
    """
    caches = ctx.caches
    stats = caches.get(STATS_KEY)
    trace = caches.get(TRACE_KEY)
    obs = caches.get(OBSERVE_KEY)
    bud = caches.get(BUDGET_KEY)
    if obs is not None:
        span = obs.spans.begin("checker", plan.rel, plan.mode_str, size, top)
    if bud is not None and bud.charge_entry(top - size):
        bud.record_site("checker", plan.rel, plan.mode_str)
        if obs is not None:
            obs.end_checker(span, NONE_OB)
        return NONE_OB
    if size == 0:
        candidates = plan.base_candidates(args)
        saw_none = plan.has_recursive
        rec_size = None
    else:
        candidates = plan.candidates(args)
        saw_none = False
        rec_size = size - 1
    for h in candidates:
        if bud is not None and bud.charge(h.cost):
            bud.record_site("checker", plan.rel, plan.mode_str)
            saw_none = True
            break
        if stats is not None:
            stats.handler_attempts += 1
        env = list(args)
        if h.tail:
            env += h.tail
        result = _checker_ops(
            ctx, plans, plan, h.ops, 0, env, rec_size, top, bud
        )
        if result is SOME_TRUE:
            if trace is not None:
                trace.record4(h.key_checker, True, False)
            if obs is not None:
                obs.end_checker(span, SOME_TRUE)
            return SOME_TRUE
        if stats is not None:
            stats.backtracks += 1
        if result is NONE_OB:
            saw_none = True
            if trace is not None:
                trace.record4(h.key_checker, False, True)
        elif trace is not None:
            trace.record4(h.key_checker, False, False)
    result = NONE_OB if saw_none else SOME_FALSE
    if obs is not None:
        obs.end_checker(span, result)
    return result


def _checker_ops(
    ctx: Context,
    plans: dict,
    plan: Plan,
    ops: tuple,
    i: int,
    env: list,
    rec_size: "int | None",
    top: int,
    bud,
) -> OptionBool:
    """Run the handler suffix ``ops[i:]`` in the checker monad.

    Returns the ``option bool`` of the whole suffix: ``.&&`` chains are
    early returns, a producer op is ``bindEC`` (re-entering this
    function per item — the enclosing call's loop supplies the
    accounting that makes an incomplete search answer ``None``).
    """
    n = len(ops)
    while i < n:
        op = ops[i]
        tag = op[0]
        if tag == OP_EVAL:
            env[op[1]] = eval_expr(op[2], env)
        elif tag == OP_TESTCTOR:
            value = env[op[1]]
            if value.ctor != op[2]:
                return SOME_FALSE
            vargs = value.args
            for k, dst in enumerate(op[3]):
                env[dst] = vargs[k]
        elif tag == OP_TESTEQ:
            if (eval_expr(op[1], env) == eval_expr(op[2], env)) == op[3]:
                return SOME_FALSE
        elif tag == OP_TESTCONST:
            if env[op[1]] != op[2]:
                return SOME_FALSE
        elif tag == OP_CHECK:
            result = _checker_instance(ctx, op).fn(
                top, eval_exprs(op[2], env)
            )
            if op[3]:
                result = negate(result)
            if result is not SOME_TRUE:
                # `.&&`: false and out-of-fuel both end the chain.
                return result
        elif tag == OP_RECCHECK:
            target = plans[op[2]] if op[2] is not None else plan
            result = run_checker(
                ctx, plans, target, rec_size, top, eval_exprs(op[1], env)
            )
            if result is not SOME_TRUE:
                return result
        elif tag == OP_EVALREL:
            # Functionalized premise: at most one output tuple exists
            # (repro.analysis.determinacy), so commit to the first
            # definite item and continue straightline — a later test
            # failing is a definite handler failure, not a backtrack
            # point, and markers seen before the answer are moot once
            # it is found.
            items = _enum_instance(ctx, op).fn(top, eval_exprs(op[3], env))
            found = None
            incomplete = False
            for item in items:
                if bud is not None and bud.charge(1):
                    incomplete = True
                    break
                if item is OUT_OF_FUEL or item is FAIL:
                    incomplete = True
                    continue
                found = item
                break
            if found is None:
                return NONE_OB if incomplete else SOME_FALSE
            st = ctx.caches.get(STATS_KEY)
            if st is not None:
                st.functionalized_calls += 1
            for k, dst in enumerate(op[4]):
                env[dst] = found[k]
        elif tag == OP_PRODUCE:
            # bindEC over the (external) enumeration: first witness
            # accepted by the continuation wins; an incomplete search
            # (fuel marker or a None continuation) taints the failure.
            items = _enum_instance(ctx, op).fn(top, eval_exprs(op[3], env))
            dsts = op[4]
            incomplete = False
            for item in items:
                if bud is not None and bud.charge(1):
                    incomplete = True
                    break
                if item is OUT_OF_FUEL or item is FAIL:
                    incomplete = True
                    continue
                for k, dst in enumerate(dsts):
                    env[dst] = item[k]
                result = _checker_ops(
                    ctx, plans, plan, ops, i + 1, env, rec_size, top, bud
                )
                if result is SOME_TRUE:
                    return SOME_TRUE
                if result is NONE_OB:
                    incomplete = True
            return NONE_OB if incomplete else SOME_FALSE
        else:  # OP_INSTANTIATE
            dst, ty = op[1], op[2]
            incomplete = False
            for value in _enum_values(ctx, ty, top):
                if bud is not None and bud.charge(1):
                    incomplete = True
                    break
                env[dst] = value
                result = _checker_ops(
                    ctx, plans, plan, ops, i + 1, env, rec_size, top, bud
                )
                if result is SOME_TRUE:
                    return SOME_TRUE
                if result is NONE_OB:
                    incomplete = True
            if not slice_exhaustive(ctx, ty, top):
                incomplete = True
            return NONE_OB if incomplete else SOME_FALSE
        i += 1
    return SOME_TRUE


def run_checker_batch(
    ctx: Context,
    plans: dict,
    plan: Plan,
    fuel: int,
    argses,
) -> list:
    """Check a vector of argument tuples at one fuel.

    The interpreter twin of the compiled backend's ``__batch__`` entry
    point: semantically exactly one top-level :func:`run_checker` call
    per vector element (``size == top_size == fuel``), so budgets,
    tracing, and observation charge as if the caller had looped — the
    batched form only amortizes the per-call dispatch in the compiled
    backend, never changes semantics.
    """
    return [
        run_checker(ctx, plans, plan, fuel, fuel, args) for args in argses
    ]


# ---------------------------------------------------------------------------
# Enumerator driver (E (option A)).
# ---------------------------------------------------------------------------


def run_enum(
    ctx: Context,
    plan: Plan,
    size: int,
    top: int,
    ins: tuple[Value, ...],
) -> Iterator[Any]:
    """One level of the derived enumerator fixpoint.

    Yields output tuples and at most one trailing ``OUT_OF_FUEL``
    marker: values stream through unchanged while any number of inner
    markers collapse (they carry no information beyond existence).

    The observation span opens at the first ``next`` (generator body
    start) and closes on exhaustion; a consumer that abandons the
    enumeration mid-way leaves the span open, to be force-closed as
    ``abandoned`` when its parent span ends.
    """
    obs = ctx.caches.get(OBSERVE_KEY)
    saw_fuel = False
    if obs is None:
        for item in _enum_level(ctx, plan, size, top, ins):
            if item is OUT_OF_FUEL:
                saw_fuel = True
            else:
                yield item
        if saw_fuel:
            yield OUT_OF_FUEL
        return
    span = obs.spans.begin("enum", plan.rel, plan.mode_str, size, top)
    values = 0
    for item in _enum_level(ctx, plan, size, top, ins):
        if item is OUT_OF_FUEL:
            saw_fuel = True
        else:
            values += 1
            yield item
    if saw_fuel:
        yield OUT_OF_FUEL
    obs.end_enum(span, values, saw_fuel)


def _enum_level(
    ctx: Context,
    plan: Plan,
    size: int,
    top: int,
    ins: tuple[Value, ...],
) -> Iterator[Any]:
    caches = ctx.caches
    stats = caches.get(STATS_KEY)
    trace = caches.get(TRACE_KEY)
    bud = caches.get(BUDGET_KEY)
    if bud is not None and bud.charge_entry(top - size):
        bud.record_site("enum", plan.rel, plan.mode_str)
        yield OUT_OF_FUEL
        return
    if size == 0:
        candidates = plan.base_candidates(ins)
        rec_size = None
    else:
        candidates = plan.candidates(ins)
        rec_size = size - 1
    for h in candidates:
        if bud is not None and bud.charge(h.cost):
            bud.record_site("enum", plan.rel, plan.mode_str)
            yield OUT_OF_FUEL
            return
        if stats is not None:
            stats.handler_attempts += 1
        env = list(ins)
        if h.tail:
            env += h.tail
        if trace is None:
            yield from _enum_ops(
                ctx, plan, h, h.ops, 0, env, rec_size, top, bud
            )
        else:
            saw_value = saw_marker = False
            for item in _enum_ops(
                ctx, plan, h, h.ops, 0, env, rec_size, top, bud
            ):
                if item is OUT_OF_FUEL:
                    saw_marker = True
                else:
                    saw_value = True
                yield item
            trace.record4(h.key_enum, saw_value, saw_marker)
    if size == 0 and plan.has_recursive:
        yield OUT_OF_FUEL


def _enum_ops(
    ctx: Context,
    plan: Plan,
    h: PlanHandler,
    ops: tuple,
    i: int,
    env: list,
    rec_size: "int | None",
    top: int,
    bud,
) -> Iterator[Any]:
    """Run the handler suffix ``ops[i:]`` in the enumerator monad:
    failed tests kill the branch, fuel surfaces as markers, producer
    ops become nested loops, and reaching the end yields the outputs."""
    n = len(ops)
    while i < n:
        op = ops[i]
        tag = op[0]
        if tag == OP_EVAL:
            env[op[1]] = eval_expr(op[2], env)
        elif tag == OP_TESTCTOR:
            value = env[op[1]]
            if value.ctor != op[2]:
                return
            vargs = value.args
            for k, dst in enumerate(op[3]):
                env[dst] = vargs[k]
        elif tag == OP_TESTEQ:
            if (eval_expr(op[1], env) == eval_expr(op[2], env)) == op[3]:
                return
        elif tag == OP_TESTCONST:
            if env[op[1]] != op[2]:
                return
        elif tag == OP_CHECK:
            result = _checker_instance(ctx, op).fn(
                top, eval_exprs(op[2], env)
            )
            if op[3]:
                result = negate(result)
            if result is not SOME_TRUE:
                if result is NONE_OB:
                    yield OUT_OF_FUEL  # fuelE
                return  # failE: branch dies
        elif tag == OP_RECCHECK:
            raise AssertionError(
                "producer schedules never contain recursive checker calls"
            )
        elif tag == OP_EVALREL:
            # Functionalized premise (at most one answer): commit to
            # the first definite item and continue straightline — no
            # nested loop, and no markers re-yielded past the answer
            # (nothing else exists to be found behind them).
            items = _enum_instance(ctx, op).fn(top, eval_exprs(op[3], env))
            found = None
            for item in items:
                if bud is not None and bud.charge(1):
                    yield OUT_OF_FUEL
                    return
                if item is OUT_OF_FUEL:
                    yield OUT_OF_FUEL
                    continue
                found = item
                break
            if found is None:
                return
            st = ctx.caches.get(STATS_KEY)
            if st is not None:
                st.functionalized_calls += 1
            for k, dst in enumerate(op[4]):
                env[dst] = found[k]
        elif tag == OP_PRODUCE:
            ins = eval_exprs(op[3], env)
            if op[5]:  # recursive self-call, one level down
                items = run_enum(ctx, plan, rec_size, top, ins)
            else:
                items = _enum_instance(ctx, op).fn(top, ins)
            dsts = op[4]
            for item in items:
                if bud is not None and bud.charge(1):
                    yield OUT_OF_FUEL
                    return
                if item is OUT_OF_FUEL:
                    yield OUT_OF_FUEL
                    continue
                for k, dst in enumerate(dsts):
                    env[dst] = item[k]
                yield from _enum_ops(
                    ctx, plan, h, ops, i + 1, env, rec_size, top, bud
                )
            return
        else:  # OP_INSTANTIATE
            dst, ty = op[1], op[2]
            for value in _enum_values(ctx, ty, top):
                if bud is not None and bud.charge(1):
                    yield OUT_OF_FUEL
                    return
                env[dst] = value
                yield from _enum_ops(
                    ctx, plan, h, ops, i + 1, env, rec_size, top, bud
                )
            if not slice_exhaustive(ctx, ty, top):
                yield OUT_OF_FUEL
            return
        i += 1
    yield eval_exprs(h.out_exprs, env)


# ---------------------------------------------------------------------------
# Generator driver (G (option A)).
# ---------------------------------------------------------------------------


def run_gen(
    ctx: Context,
    plan: Plan,
    size: int,
    top: int,
    ins: tuple[Value, ...],
    rng: random.Random,
    retries: int = 2,
) -> Any:
    """One level of the derived generator fixpoint: QuickChick-style
    weighted backtracking.  Recursive handlers get weight proportional
    to the remaining size (deep structures stay likely at large sizes,
    recursion tapers off near 0); each candidate is retried at most
    *retries* times before being discarded."""
    caches = ctx.caches
    stats = caches.get(STATS_KEY)
    trace = caches.get(TRACE_KEY)
    obs = caches.get(OBSERVE_KEY)
    bud = caches.get(BUDGET_KEY)
    if obs is not None:
        span = obs.spans.begin("gen", plan.rel, plan.mode_str, size, top)
    if bud is not None and bud.charge_entry(top - size):
        bud.record_site("gen", plan.rel, plan.mode_str)
        if obs is not None:
            obs.end_gen(span, OUT_OF_FUEL, 0)
        return OUT_OF_FUEL
    attempts = 0
    if size == 0:
        candidates = plan.base_candidates(ins)
        rec_size = None
        # Skipped recursive handlers mean a FAIL here is not
        # definitive — report fuel exhaustion instead.
        saw_fuel = plan.has_recursive
    else:
        candidates = plan.candidates(ins)
        rec_size = size - 1
        saw_fuel = False
    remaining = [
        [h, retries, (size if h.recursive else 1) or 1] for h in candidates
    ]
    while remaining:
        total = 0
        for entry in remaining:
            total += entry[2]
        pick = rng.randrange(total)
        entry = remaining[0]
        for candidate in remaining:
            if pick < candidate[2]:
                entry = candidate
                break
            pick -= candidate[2]
        h = entry[0]
        if bud is not None and bud.charge(h.cost):
            bud.record_site("gen", plan.rel, plan.mode_str)
            saw_fuel = True
            break
        if stats is not None:
            stats.handler_attempts += 1
        attempts += 1
        result = _gen_handler(ctx, plan, h, rec_size, top, ins, rng, retries)
        if result is not FAIL and result is not OUT_OF_FUEL:
            if trace is not None:
                trace.record4(h.key_gen, True, False)
            if obs is not None:
                obs.end_gen(span, result, attempts)
            return result
        if stats is not None:
            stats.backtracks += 1
        if result is OUT_OF_FUEL:
            saw_fuel = True
            if trace is not None:
                trace.record4(h.key_gen, False, True)
        elif trace is not None:
            trace.record4(h.key_gen, False, False)
        entry[1] -= 1
        if entry[1] <= 0:
            remaining.remove(entry)
    if stats is not None and saw_fuel:
        stats.fuel_exhaustions += 1
    result = OUT_OF_FUEL if saw_fuel else FAIL
    if obs is not None:
        obs.end_gen(span, result, attempts)
    return result


def _gen_handler(
    ctx: Context,
    plan: Plan,
    h: PlanHandler,
    rec_size: "int | None",
    top: int,
    ins: tuple[Value, ...],
    rng: random.Random,
    retries: int,
) -> Any:
    """One sampled path through a handler: every op is straightline in
    the generator monad (producers draw a single sample)."""
    env = list(ins)
    if h.tail:
        env += h.tail
    for op in h.ops:
        tag = op[0]
        if tag == OP_EVAL:
            env[op[1]] = eval_expr(op[2], env)
        elif tag == OP_TESTCTOR:
            value = env[op[1]]
            if value.ctor != op[2]:
                return FAIL
            vargs = value.args
            for k, dst in enumerate(op[3]):
                env[dst] = vargs[k]
        elif tag == OP_TESTEQ:
            if (eval_expr(op[1], env) == eval_expr(op[2], env)) == op[3]:
                return FAIL
        elif tag == OP_TESTCONST:
            if env[op[1]] != op[2]:
                return FAIL
        elif tag == OP_CHECK:
            result = _checker_instance(ctx, op).fn(
                top, eval_exprs(op[2], env)
            )
            if op[3]:
                result = negate(result)
            if result is not SOME_TRUE:
                return OUT_OF_FUEL if result is NONE_OB else FAIL
        elif tag == OP_RECCHECK:
            raise AssertionError(
                "producer schedules never contain recursive checker calls"
            )
        elif tag == OP_PRODUCE or tag == OP_EVALREL:
            # The generator monad draws a single sample per producer op
            # already, so a functionalized premise behaves identically
            # (same RNG stream with the pass on or off).
            ins2 = eval_exprs(op[3], env)
            if op[5]:  # recursive self-call, one level down
                produced = run_gen(ctx, plan, rec_size, top, ins2, rng, retries)
            else:
                produced = _gen_instance(ctx, op).fn(top, ins2, rng)
            if produced is FAIL or produced is OUT_OF_FUEL:
                return produced
            for k, dst in enumerate(op[4]):
                env[dst] = produced[k]
        else:  # OP_INSTANTIATE
            value = _gen_value(ctx, op[2], top, rng)
            if value is FAIL or value is OUT_OF_FUEL:
                return value
            env[op[1]] = value
    return eval_exprs(h.out_exprs, env)
