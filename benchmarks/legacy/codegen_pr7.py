"""Frozen PR-7 code generator (benchmark baseline only).

A verbatim copy (imports adjusted) of ``repro.derive.codegen`` as of
the commit *before* the session-scoped state refactor: the compiler
bakes ``ctx.caches`` — the process-global runtime-state dict — into
the generated module's globals at compile time, so compiled code is
permanently bound to that one dict.  ``benchmarks/bench_serve.py``
measures the live code generator against this baseline to guard the
refactor's single-caller overhead bound (<= 1.05x).

Nothing in ``src/`` imports this module; do not "fix" or modernize it.
"""


from __future__ import annotations

from typing import Any

from repro.core.context import Context
from repro.core.errors import ReproError, UnknownNameError
from repro.core.types import Ty, TypeExpr, is_ground, mangle
from repro.core.values import Value
from repro.producers.combinators import _enum_values, _gen_value, slice_exhaustive
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE, negate
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.derive import specialize
from repro.derive.plan import (
    OP_CHECK,
    OP_EVAL,
    OP_EVALREL,
    OP_INSTANTIATE,
    OP_PRODUCE,
    OP_RECCHECK,
    OP_TESTCONST,
    OP_TESTCTOR,
    OP_TESTEQ,
    X_CONST,
    X_CTOR,
    X_SLOT,
    Plan,
    PlanHandler,
    lower_schedule,
)
from repro.derive.schedule import Schedule


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _PlanCompiler:
    def __init__(
        self, ctx: Context, plan: Plan, kind: str, fast: bool = False
    ) -> None:
        self.ctx = ctx
        self.plan = plan
        self.kind = kind  # 'checker' | 'enum' | 'gen'
        # fast=True emits the instrumentation-free twin: the
        # trace/observe/budget locals are pinned to None (every guarded
        # site is a no-op exactly when those caches are empty, which is
        # the only state in which entry wrappers select this twin).
        self.fast = fast
        self.globals: dict[str, Any] = {
            "Value": Value,
            "SOME_TRUE": SOME_TRUE,
            "SOME_FALSE": SOME_FALSE,
            "NONE_OB": NONE_OB,
            "OUT_OF_FUEL": OUT_OF_FUEL,
            "FAIL": FAIL,
            "_negate": negate,
            "_caches": ctx.caches,
        }
        self._const_cache: dict[Value, str] = {}
        self._fn_cache: dict[int, str] = {}
        self._counter = 0

    # -- helpers -----------------------------------------------------------------

    def _bind_global(self, stem: str, obj: Any) -> str:
        self._counter += 1
        name = f"{stem}_{self._counter}"
        self.globals[name] = obj
        return name

    def _bind_fn(self, stem: str, fn: Any) -> str:
        cached = self._fn_cache.get(id(fn))
        if cached is None:
            cached = self._fn_cache[id(fn)] = self._bind_global(stem, fn)
        return cached

    def constant(self, value: Value) -> str:
        if value not in self._const_cache:
            self._const_cache[value] = self._bind_global("_const", value)
        return self._const_cache[value]

    def slot(self, i: int) -> str:
        return f"_in{i}" if i < self.plan.n_ins else f"_s{i}"

    def expr(self, e: tuple) -> str:
        """Compile a lowered expression to a Python expression."""
        tag = e[0]
        if tag == X_SLOT:
            return self.slot(e[1])
        if tag == X_CONST:
            return self.constant(e[1])
        args = ", ".join(self.expr(a) for a in e[2])
        if tag == X_CTOR:
            trailing = "," if len(e[2]) == 1 else ""
            return f"Value({e[1]!r}, ({args}{trailing}))"
        fn_name = self._bind_fn(f"_f_{e[3]}", e[1])
        return f"{fn_name}({args})"

    def args_tuple(self, exprs: tuple) -> str:
        inner = ", ".join(self.expr(e) for e in exprs)
        trailing = "," if len(exprs) == 1 else ""
        return f"({inner}{trailing})"

    def _emit_instr_locals(self, em: _Emitter) -> None:
        if self.fast:
            em.emit("_tr = _ob = _bud = None")
            return
        em.emit("_tr = _caches.get('derive_trace')")
        em.emit("_ob = _caches.get('derive_observe')")
        em.emit("_bud = _caches.get('derive_budget')")

    def _fail(self, em: _Emitter, cond: str, fail: str) -> None:
        em.emit(f"if {cond}:")
        em.indent += 1
        em.emit(fail)
        em.indent -= 1

    def _emit_test(self, em: _Emitter, op: tuple, fail: str) -> None:
        """The deterministic test ops, identical in every backend."""
        tag = op[0]
        if tag == OP_TESTCTOR:
            src = self.slot(op[1])
            self._fail(em, f"{src}.ctor != {op[2]!r}", fail)
            for k, dst in enumerate(op[3]):
                em.emit(f"{self.slot(dst)} = {src}.args[{k}]")
        elif tag == OP_TESTCONST:
            self._fail(
                em, f"{self.slot(op[1])} != {self.constant(op[2])}", fail
            )
        else:  # OP_TESTEQ
            cmp = "==" if op[3] else "!="
            self._fail(
                em, f"{self.expr(op[1])} {cmp} {self.expr(op[2])}", fail
            )

    # -- instance resolution at compile time -----------------------------------------

    def checker_fn(self, rel: str):
        from repro.derive.instances import resolve_compiled_checker

        return resolve_compiled_checker(self.ctx, rel)

    def producer_fn(self, rel: str, mode) -> Any:
        from repro.derive.instances import ENUM, GEN, resolve_compiled

        kind = ENUM if self.kind in ("checker", "enum") else GEN
        return resolve_compiled(self.ctx, kind, rel, mode)

    def eval_twin(self, rel: str, mode) -> Any:
        """The premise's direct-eval artifact, when its enum instance
        carries one (attached by :func:`compile_enumerator` for plans
        whose determinacy verdict licenses single-answer evaluation).
        Fast twins call it at :data:`OP_EVALREL` sites in place of the
        first-definite-item loop; slow twins keep the loop so the
        per-item budget charges stay site-for-site with the
        interpreter."""
        if self.kind == "gen":
            return None
        return getattr(
            self.producer_fn(rel, mode), "__spec_eval_rec__", None
        )

    def eval_call(self, fn: str, args: str) -> str:
        """A direct call of a premise eval fixpoint — raw ``rec``
        convention ``(size, top, *ins)`` with the caller's remaining
        fuel as both, and no argument tuple."""
        sep = ", " if args else ""
        return f"{fn}(_top, _top{sep}{args})"

    # -- compilation ------------------------------------------------------------------

    def compile(self):
        em = _Emitter()
        for h in self.plan.handlers:
            if self.kind == "checker":
                self._emit_checker_handler(em, h)
            elif self.kind == "enum":
                self._emit_enum_handler(em, h)
            else:
                self._emit_gen_handler(em, h)
            em.emit()
        self._emit_dispatch(em)
        self._emit_top(em)
        source = em.source()
        code = compile(source, f"<derived {self.kind} {self.plan.rel}>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        rec = namespace["rec"]
        rec.__derived_source__ = source
        return rec

    def _ins_params(self) -> list[str]:
        return [f"_in{i}" for i in range(self.plan.n_ins)]

    def _handler_params(self) -> str:
        ins = self._ins_params()
        if self.kind == "gen":
            extra = f", {', '.join(ins)}" if ins else ""
            return f"_size1, _top, _rng{extra}"
        return f"_size1, _top, {', '.join(ins) or '*_'}"

    def _call_handler(self, fn: str) -> str:
        ins = self._ins_params()
        params = ", ".join(ins)
        if self.kind == "gen":
            extra = f", {params}" if params else ""
            return f"{fn}(_sz1, _top, _rng{extra})"
        sep = ", " if params else ""
        return f"{fn}(_sz1, _top{sep}{params})"

    # .. dispatch tables .............................................................

    def _entry(self, h: PlanHandler) -> str:
        key4 = (self.kind,) + h.key3
        return f"(_h_{h.index}, {h.recursive!r}, {key4!r}, {h.cost!r})"

    def _entries(self, handlers: tuple) -> str:
        inner = ", ".join(self._entry(h) for h in handlers)
        trailing = "," if len(handlers) == 1 else ""
        return f"({inner}{trailing})"

    def _emit_dispatch(self, em: _Emitter) -> None:
        """Dispatch tables as module-level literals.  Entries are
        ``(handler_fn, recursive, key4, cost)`` so one shape serves all
        three backends (weights need ``recursive``, profiling needs the
        pre-merged trace key — the compiled twin of
        :attr:`~repro.derive.plan.PlanHandler.key_checker` and friends —
        and budget charges need the static per-attempt
        :attr:`~repro.derive.plan.PlanHandler.cost`)."""
        plan = self.plan
        if plan.dispatch_pos < 0:
            em.emit(f"_all_full = {self._entries(plan.handlers)}")
            em.emit(f"_all_base = {self._entries(plan.base)}")
            em.emit()
            return
        for name, table, default in (
            ("full", plan.full_table, plan.full_default),
            ("base", plan.base_table, plan.base_default),
        ):
            items = ", ".join(
                f"{ctor!r}: {self._entries(hs)}" for ctor, hs in table.items()
            )
            em.emit(f"_disp_{name} = {{{items}}}")
            em.emit(f"_disp_{name}_d = {self._entries(default)}")
        em.emit()

    def _emit_candidates(self, em: _Emitter, which: str) -> None:
        """Emit ``_hs = <candidates>`` for the current size branch."""
        plan = self.plan
        if plan.dispatch_pos < 0:
            em.emit(f"_hs = _all_{which}")
        else:
            scrut = f"_in{plan.dispatch_pos}"
            em.emit(
                f"_hs = _disp_{which}.get({scrut}.ctor, _disp_{which}_d)"
            )

    # .. checker ..................................................................

    def _emit_checker_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        if _has_loop_ops(h):
            # Only handlers with producer loops charge per item; the
            # budget probe is scoped to them so straightline handlers
            # stay probe-free.
            if self.fast:
                em.emit("_bud = None")
            else:
                em.emit("_bud = _caches.get('derive_budget')")
        em.emit("_inc = False")
        self._emit_checker_ops(em, h.ops, 0, depth=0)
        em.emit("return NONE_OB if _inc else SOME_FALSE")
        em.indent -= 1

    def _emit_checker_ops(self, em: _Emitter, ops: tuple, i: int, depth: int) -> None:
        fail = "return SOME_FALSE" if depth == 0 else "continue"
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag in (OP_CHECK, OP_RECCHECK):
                r = f"_r{i}"
                if tag == OP_RECCHECK:
                    args = ", ".join(self.expr(e) for e in op[1])
                    em.emit(f"{r} = rec(_size1, _top, {args})")
                else:
                    fn = self._bind_fn(
                        f"_chk_{op[4]}", self.checker_fn(op[4])
                    )
                    em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                    if op[3]:
                        em.emit(f"{r} = _negate({r})")
                if depth == 0:
                    # Straight-line `.&&`: None propagates as None.
                    self._fail(em, f"{r} is NONE_OB", "return NONE_OB")
                    self._fail(em, f"{r} is not SOME_TRUE", "return SOME_FALSE")
                else:
                    # Inside an enumeration loop: a None kills this
                    # branch but taints the search (bindEC accounting).
                    em.emit(f"if {r} is not SOME_TRUE:")
                    em.indent += 1
                    self._fail(em, f"{r} is NONE_OB", "_inc = True")
                    em.emit(fail)
                    em.indent -= 1
            elif tag == OP_EVALREL:
                # Functionalized premise (repro.analysis.determinacy):
                # at most one answer exists, so commit to the first
                # definite item and continue straightline.  The local
                # incomplete flag mirrors the interpreter's — markers
                # are moot once the answer is found, and without one
                # they decide None vs definite-false for this op only.
                item, got, inc = f"_it{i}", f"_g{i}", f"_ic{i}"
                assert not op[5]  # the transform skips recursive ops
                ev = self.eval_twin(op[6], op[7]) if self.fast else None
                if ev is not None:
                    # The premise carries a direct-eval twin: one call,
                    # no producer loop.  OUT_OF_FUEL absorbs every
                    # marker the loop form would have tallied; FAIL is
                    # the loop's complete-and-empty exit.
                    fn = self._bind_fn(f"_ev_{op[6]}", ev)
                    args = ", ".join(self.expr(e) for e in op[3])
                    em.emit(f"{got} = {self.eval_call(fn, args)}")
                    em.emit(f"if {got} is OUT_OF_FUEL or {got} is FAIL:")
                    em.indent += 1
                    if depth == 0:
                        em.emit(
                            f"return NONE_OB if {got} is OUT_OF_FUEL"
                            " else SOME_FALSE"
                        )
                    else:
                        self._fail(
                            em, f"{got} is OUT_OF_FUEL", "_inc = True"
                        )
                        em.emit(fail)
                    em.indent -= 1
                    for k, dst in enumerate(op[4]):
                        em.emit(f"{self.slot(dst)} = {got}[{k}]")
                    i += 1
                    continue
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"{got} = None")
                em.emit(f"{inc} = False")
                em.emit(f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, f"{inc} = True", "break")
                em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
                em.indent += 1
                em.emit(f"{inc} = True")
                em.emit("continue")
                em.indent -= 1
                em.emit(f"{got} = {item}")
                em.emit("break")
                em.indent -= 1
                em.emit(f"if {got} is None:")
                em.indent += 1
                if depth == 0:
                    em.emit(f"return NONE_OB if {inc} else SOME_FALSE")
                else:
                    self._fail(em, inc, "_inc = True")
                    em.emit(fail)
                em.indent -= 1
                if not self.fast:
                    em.emit("_st = _caches.get('derive_stats')")
                    em.emit("if _st is not None:")
                    em.indent += 1
                    em.emit("_st.functionalized_calls += 1")
                    em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {got}[{k}]")
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                assert not op[5]  # checker schedules: external only
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, "_inc = True", "break")
                em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                # Charge after the marker test: the interpreter's
                # instantiate loop sees raw values only (the fuel
                # marker lives outside its stream), so charging the
                # marker here would desynchronize the op streams.
                self._emit_loop_charge(em, "_inc = True", "break")
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        em.emit("return SOME_TRUE")

    def _emit_loop_charge(self, em: _Emitter, *stmts: str) -> None:
        """One ``charge(1)`` at a producer-loop top — the compiled twin
        of the interpreters' per-item charge, same site, same order."""
        em.emit("if _bud is not None and _bud.charge(1):")
        em.indent += 1
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    # .. enumerator ..............................................................

    def _emit_enum_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        if _has_loop_ops(h):
            if self.fast:
                em.emit("_bud = None")
            else:
                em.emit("_bud = _caches.get('derive_budget')")
        self._emit_enum_ops(em, h, h.ops, 0, depth=0)
        em.indent -= 1

    def _emit_enum_ops(
        self, em: _Emitter, h: PlanHandler, ops: tuple, i: int, depth: int
    ) -> None:
        fail = "return" if depth == 0 else "continue"
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag == OP_CHECK:
                r = f"_r{i}"
                fn = self._bind_fn(f"_chk_{op[4]}", self.checker_fn(op[4]))
                em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                if op[3]:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                self._fail(em, f"{r} is NONE_OB", "yield OUT_OF_FUEL")
                em.emit(fail)
                em.indent -= 1
            elif tag == OP_RECCHECK:
                raise AssertionError(
                    "producer schedules never contain recursive checker calls"
                )
            elif tag == OP_EVALREL:
                # Functionalized premise: first definite item commits
                # (nothing else exists behind later markers), then the
                # handler continues straightline — no nested loop.
                item, got = f"_it{i}", f"_g{i}"
                ev = self.eval_twin(op[6], op[7]) if self.fast else None
                if ev is not None:
                    fn = self._bind_fn(f"_ev_{op[6]}", ev)
                    args = ", ".join(self.expr(e) for e in op[3])
                    em.emit(f"{got} = {self.eval_call(fn, args)}")
                    em.emit(f"if {got} is OUT_OF_FUEL or {got} is FAIL:")
                    em.indent += 1
                    self._fail(
                        em, f"{got} is OUT_OF_FUEL", "yield OUT_OF_FUEL"
                    )
                    em.emit(fail)
                    em.indent -= 1
                    for k, dst in enumerate(op[4]):
                        em.emit(f"{self.slot(dst)} = {got}[{k}]")
                    i += 1
                    continue
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"{got} = None")
                em.emit(f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, "yield OUT_OF_FUEL", "break")
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("yield OUT_OF_FUEL")
                em.emit("continue")
                em.indent -= 1
                em.emit(f"{got} = {item}")
                em.emit("break")
                em.indent -= 1
                em.emit(f"if {got} is None:")
                em.indent += 1
                em.emit(fail)
                em.indent -= 1
                if not self.fast:
                    em.emit("_st = _caches.get('derive_stats')")
                    em.emit("if _st is not None:")
                    em.indent += 1
                    em.emit("_st.functionalized_calls += 1")
                    em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {got}[{k}]")
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                ins = ", ".join(self.expr(e) for e in op[3])
                if op[5]:  # recursive self-call, one level down
                    source = f"rec(_size1, _top, {ins})"
                else:
                    fn = self._bind_fn(
                        f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                    )
                    source = f"{fn}(_top, {self.args_tuple(op[3])})"
                em.emit(f"for {item} in {source}:")
                em.indent += 1
                # ``break``, not ``return``: the interpreter's charge
                # trip returns from the innermost ``_enum_ops`` frame
                # only, so outer produce loops resume with their next
                # item — exiting the whole flattened handler here would
                # drop those items and diverge under one-shot faults.
                self._emit_loop_charge(em, "yield OUT_OF_FUEL", "break")
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("yield OUT_OF_FUEL")
                em.emit("continue")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                self._emit_enum_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("yield OUT_OF_FUEL")
                em.emit("continue")
                em.indent -= 1
                # After the marker test — see the checker twin above —
                # and ``break`` for the same reason as OP_PRODUCE.
                self._emit_loop_charge(em, "yield OUT_OF_FUEL", "break")
                self._emit_enum_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        outs = ", ".join(self.expr(e) for e in h.out_exprs)
        trailing = "," if len(h.out_exprs) == 1 else ""
        em.emit(f"yield ({outs}{trailing})")

    # .. direct-eval twin (functional enum plans) ................................

    def compile_eval(self):
        """Compile the enum plan as a direct function — the *eval
        twin* of a relation whose determinacy verdict is functional or
        better (``repro.analysis.determinacy``): at most one answer
        exists, so enumeration collapses to computation.

        ``rec(_size, _top, *ins)`` returns the unique answer tuple,
        ``OUT_OF_FUEL`` when the search was incomplete without finding
        it, or ``FAIL`` when it is definitely absent.  Recursive
        premises become direct recursive calls (same relation and mode,
        hence themselves single-answer) and functional external
        premises chain through their own eval twins — no generator
        frames anywhere on the hot path.

        Soundness is the OP_EVALREL commit argument one level deeper:
        a definite answer found at any fuel is the unique semantic
        answer, so committing to it (and reporting definite failure
        when a later test rejects it) loses nothing, and markers seen
        before the commit are moot.  The twin is instrumentation-free
        by construction and must only be reached from fast twins —
        entry wrappers select those exactly when no trace/observe/
        budget cache is installed, so every charge site the twin omits
        is a no-op in any state in which it runs.
        """
        assert self.kind == "enum" and self.fast
        em = _Emitter()
        for h in self.plan.handlers:
            self._emit_eval_handler(em, h)
            em.emit()
        self._emit_dispatch(em)
        self._emit_eval_top(em)
        source = em.source()
        code = compile(source, f"<derived eval {self.plan.rel}>", "exec")
        namespace = dict(self.globals)
        exec(code, namespace)
        rec = namespace["rec"]
        rec.__derived_source__ = source
        return rec

    def _emit_eval_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        em.emit("_inc = False")
        self._emit_eval_ops(em, h, h.ops, 0, depth=0)
        em.emit("return OUT_OF_FUEL if _inc else None")
        em.indent -= 1

    def _emit_eval_ops(
        self, em: _Emitter, h: PlanHandler, ops: tuple, i: int, depth: int
    ) -> None:
        # Handler protocol: answer tuple | OUT_OF_FUEL | None (definite
        # miss).  At depth 0 markers return immediately; inside a
        # residual producer loop they accumulate in ``_inc``.
        fail = "return None" if depth == 0 else "continue"
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag == OP_CHECK:
                r = f"_r{i}"
                fn = self._bind_fn(f"_chk_{op[4]}", self.checker_fn(op[4]))
                em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                if op[3]:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                if depth == 0:
                    em.emit(
                        f"return OUT_OF_FUEL if {r} is NONE_OB else None"
                    )
                else:
                    self._fail(em, f"{r} is NONE_OB", "_inc = True")
                    em.emit(fail)
                em.indent -= 1
            elif tag == OP_RECCHECK:
                raise AssertionError(
                    "producer schedules never contain recursive checker calls"
                )
            elif tag == OP_EVALREL or (tag == OP_PRODUCE and op[5]):
                # Single-answer premise: one direct call.  A recursive
                # produce runs this plan's own (rel, mode) — functional
                # by the twin's precondition — so it commits too.
                got = f"_g{i}"
                if op[5]:
                    ins = ", ".join(self.expr(e) for e in op[3])
                    em.emit(f"{got} = rec(_size1, _top, {ins})")
                else:
                    ev = self.eval_twin(op[6], op[7])
                    if ev is None:
                        # No eval twin on the premise instance (e.g. an
                        # interpreted fallback): first-definite-item
                        # loop, as in the fast enum twin.
                        self._emit_eval_produce_loop(em, op, i, depth, fail)
                        i += 1
                        continue
                    fn = self._bind_fn(f"_ev_{op[6]}", ev)
                    args = ", ".join(self.expr(e) for e in op[3])
                    em.emit(f"{got} = {self.eval_call(fn, args)}")
                em.emit(f"if {got} is OUT_OF_FUEL or {got} is FAIL:")
                em.indent += 1
                if depth == 0:
                    em.emit(
                        f"return OUT_OF_FUEL if {got} is OUT_OF_FUEL"
                        " else None"
                    )
                else:
                    self._fail(em, f"{got} is OUT_OF_FUEL", "_inc = True")
                    em.emit(fail)
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {got}[{k}]")
            elif tag == OP_PRODUCE:
                # A premise the analysis could not functionalize keeps
                # its enumeration loop.
                item = f"_it{i}"
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(
                    f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):"
                )
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                self._emit_eval_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                self._emit_eval_ops(em, h, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        outs = ", ".join(self.expr(e) for e in h.out_exprs)
        trailing = "," if len(h.out_exprs) == 1 else ""
        em.emit(f"return ({outs}{trailing})")

    def _emit_eval_produce_loop(
        self, em: _Emitter, op: tuple, i: int, depth: int, fail: str
    ) -> None:
        """OP_EVALREL without a premise eval twin: commit to the first
        definite item of the premise enumerator (the fast enum twin's
        form, with returns instead of yields)."""
        item, got, inc = f"_it{i}", f"_g{i}", f"_ic{i}"
        fn = self._bind_fn(f"_enum_{op[6]}", self.producer_fn(op[6], op[7]))
        em.emit(f"{got} = None")
        em.emit(f"{inc} = False")
        em.emit(f"for {item} in {fn}(_top, {self.args_tuple(op[3])}):")
        em.indent += 1
        em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
        em.indent += 1
        em.emit(f"{inc} = True")
        em.emit("continue")
        em.indent -= 1
        em.emit(f"{got} = {item}")
        em.emit("break")
        em.indent -= 1
        em.emit(f"if {got} is None:")
        em.indent += 1
        if depth == 0:
            em.emit(f"return OUT_OF_FUEL if {inc} else None")
        else:
            self._fail(em, inc, "_inc = True")
            em.emit(fail)
        em.indent -= 1
        for k, dst in enumerate(op[4]):
            em.emit(f"{self.slot(dst)} = {got}[{k}]")

    def _emit_eval_top(self, em: _Emitter) -> None:
        plan = self.plan
        ins = self._ins_params()
        params = ", ".join(ins)
        em.emit(f"def rec(_size, _top, {params or '*_'}):")
        em.indent += 1
        em.emit("if _size == 0:")
        em.indent += 1
        self._emit_candidates(em, "base")
        em.emit("_sz1 = None")
        em.emit(f"_fuel = {plan.has_recursive!r}")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        self._emit_candidates(em, "full")
        em.emit("_sz1 = _size - 1")
        em.emit("_fuel = False")
        em.indent -= 1
        em.emit("for _h in _hs:")
        em.indent += 1
        em.emit(f"_r = {self._call_handler('_h[0]')}")
        em.emit("if _r is None: continue")
        em.emit("if _r is OUT_OF_FUEL:")
        em.indent += 1
        em.emit("_fuel = True")
        em.emit("continue")
        em.indent -= 1
        em.emit("return _r")
        em.indent -= 1
        em.emit("return OUT_OF_FUEL if _fuel else FAIL")
        em.indent -= 1

    # .. generator ...............................................................

    def _emit_gen_handler(self, em: _Emitter, h: PlanHandler) -> None:
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        for i, op in enumerate(h.ops):
            tag = op[0]
            if tag == OP_EVAL:
                em.emit(f"{self.slot(op[1])} = {self.expr(op[2])}")
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, "return FAIL")
            elif tag == OP_CHECK:
                r = f"_r{i}"
                fn = self._bind_fn(f"_chk_{op[4]}", self.checker_fn(op[4]))
                em.emit(f"{r} = {fn}(_top, {self.args_tuple(op[2])})")
                if op[3]:
                    em.emit(f"{r} = _negate({r})")
                em.emit(f"if {r} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"return OUT_OF_FUEL if {r} is NONE_OB else FAIL")
                em.indent -= 1
            elif tag == OP_RECCHECK:
                raise AssertionError(
                    "producer schedules never contain recursive checker calls"
                )
            elif tag in (OP_PRODUCE, OP_EVALREL):
                # OP_EVALREL degenerates to OP_PRODUCE here: the
                # generator monad draws a single sample per producer op
                # already (same RNG stream with the pass on or off).
                item = f"_it{i}"
                if op[5]:  # recursive self-call, one level down
                    em.emit(
                        f"{item} = rec(_size1, _top, "
                        f"{self.args_tuple(op[3])}, _rng)"
                    )
                else:
                    fn = self._bind_fn(
                        f"_gen_{op[6]}", self.producer_fn(op[6], op[7])
                    )
                    em.emit(
                        f"{item} = {fn}(_top, {self.args_tuple(op[3])}, _rng)"
                    )
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
            else:  # OP_INSTANTIATE
                gen_fn = self._bind_global(
                    "_arbg", _make_arbitrary_gen(self.ctx, op[2])
                )
                item = self.slot(op[1])
                em.emit(f"{item} = {gen_fn}(_top, _rng)")
                em.emit(f"if {item} is FAIL or {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit(f"return {item}")
                em.indent -= 1
        outs = ", ".join(self.expr(e) for e in h.out_exprs)
        trailing = "," if len(h.out_exprs) == 1 else ""
        em.emit(f"return ({outs}{trailing})")
        em.indent -= 1

    # .. the fixpoint .............................................................

    def _emit_entry_charge(self, em: _Emitter, *stmts: str) -> None:
        """The per-level ``charge_entry`` check — the compiled twin of
        the interpreters' fixpoint-entry charge.  *stmts* unwind to the
        backend's indefinite outcome."""
        plan = self.plan
        em.emit("if _bud is not None and _bud.charge_entry(_top - _size):")
        em.indent += 1
        em.emit(
            f"_bud.record_site({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r})"
        )
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    def _emit_handler_charge(self, em: _Emitter, *stmts: str) -> None:
        """One ``charge(cost)`` per handler attempt, before the call —
        same site and order as the interpreters."""
        plan = self.plan
        em.emit("if _bud is not None and _bud.charge(_h[3]):")
        em.indent += 1
        em.emit(
            f"_bud.record_site({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r})"
        )
        for stmt in stmts:
            em.emit(stmt)
        em.indent -= 1

    def _emit_top(self, em: _Emitter) -> None:
        plan = self.plan
        ins = self._ins_params()
        params = ", ".join(ins)
        span_begin = (
            f"_sp = _ob.spans.begin({self.kind!r}, {plan.rel!r}, "
            f"{plan.mode_str!r}, _size, _top)"
        )
        if self.kind == "checker":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            self._emit_instr_locals(em)
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "if _ob is not None: _ob.end_checker(_sp, NONE_OB)",
                "return NONE_OB",
            )
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.emit(f"_none = {plan.has_recursive!r}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.emit("_none = False")
            em.indent -= 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_none = True", "break")
            em.emit(f"_r = {self._call_handler('_h[0]')}")
            em.emit("if _tr is not None:")
            em.indent += 1
            em.emit(
                "_tr.record4(_h[2], _r is SOME_TRUE, _r is NONE_OB)"
            )
            em.indent -= 1
            em.emit("if _r is SOME_TRUE:")
            em.indent += 1
            em.emit("if _ob is not None: _ob.end_checker(_sp, SOME_TRUE)")
            em.emit("return SOME_TRUE")
            em.indent -= 1
            em.emit("if _r is NONE_OB: _none = True")
            em.indent -= 1
            em.emit("_r = NONE_OB if _none else SOME_FALSE")
            em.emit("if _ob is not None: _ob.end_checker(_sp, _r)")
            em.emit("return _r")
            em.indent -= 1
        elif self.kind == "enum":
            em.emit(f"def rec(_size, _top, {params or '*_'}):")
            em.indent += 1
            self._emit_instr_locals(em)
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "yield OUT_OF_FUEL",
                "if _ob is not None: _ob.end_enum(_sp, 0, True)",
                "return",
            )
            em.emit("_fuel = False")
            em.emit("_nv = 0")
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.indent -= 1
            em.emit("if _tr is None:")
            em.indent += 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit(f"for _x in {self._call_handler('_h[0]')}:")
            em.indent += 1
            em.emit("if _x is OUT_OF_FUEL: _fuel = True")
            em.emit("else: yield _x")
            em.indent -= 3
            em.emit("else:")
            em.indent += 1
            em.emit("for _h in _hs:")
            em.indent += 1
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit("_sv = _sf = False")
            em.emit(f"for _x in {self._call_handler('_h[0]')}:")
            em.indent += 1
            em.emit("if _x is OUT_OF_FUEL: _fuel = _sf = True")
            em.emit("else:")
            em.indent += 1
            em.emit("_sv = True")
            em.emit("_nv += 1")
            em.emit("yield _x")
            em.indent -= 2
            em.emit("_tr.record4(_h[2], _sv, _sf)")
            em.indent -= 2
            if plan.has_recursive:
                em.emit("if _size == 0: _fuel = True")
            em.emit("if _fuel: yield OUT_OF_FUEL")
            em.emit("if _ob is not None: _ob.end_enum(_sp, _nv, _fuel)")
            em.indent -= 1
        else:  # gen
            em.emit("def rec(_size, _top, _ins, _rng):")
            em.indent += 1
            if params:
                comma = "," if len(ins) == 1 else ""
                em.emit(f"{params}{comma} = _ins")
            self._emit_instr_locals(em)
            em.emit(f"if _ob is not None: {span_begin}")
            self._emit_entry_charge(
                em,
                "if _ob is not None: _ob.end_gen(_sp, OUT_OF_FUEL, 0)",
                "return OUT_OF_FUEL",
            )
            em.emit("_na = 0")
            em.emit("if _size == 0:")
            em.indent += 1
            self._emit_candidates(em, "base")
            em.emit("_sz1 = None")
            em.emit(f"_fuel = {plan.has_recursive!r}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            self._emit_candidates(em, "full")
            em.emit("_sz1 = _size - 1")
            em.emit("_fuel = False")
            em.indent -= 1
            em.emit(
                "_live = [[_h, 2, ((_size if _h[1] else 1) or 1)]"
                " for _h in _hs]"
            )
            em.emit("while _live:")
            em.indent += 1
            em.emit("_total = 0")
            em.emit("for _e in _live: _total += _e[2]")
            em.emit("_pick = _rng.randrange(_total)")
            em.emit("for _e in _live:")
            em.indent += 1
            em.emit("if _pick < _e[2]: break")
            em.emit("_pick -= _e[2]")
            em.indent -= 1
            em.emit("_h = _e[0]")
            self._emit_handler_charge(em, "_fuel = True", "break")
            em.emit("_na += 1")
            args = f", {params}" if params else ""
            em.emit(f"_res = _h[0](_sz1, _top, _rng{args})")
            em.emit("if _res is FAIL:")
            em.indent += 1
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], False, False)")
            em.indent -= 1
            em.emit("elif _res is OUT_OF_FUEL:")
            em.indent += 1
            em.emit("_fuel = True")
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], False, True)")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            em.emit("if _tr is not None:"
                    " _tr.record4(_h[2], True, False)")
            em.emit("if _ob is not None: _ob.end_gen(_sp, _res, _na)")
            em.emit("return _res")
            em.indent -= 1
            em.emit("_e[1] -= 1")
            em.emit("if _e[1] <= 0: _live.remove(_e)")
            em.indent -= 1
            em.emit("_res = OUT_OF_FUEL if _fuel else FAIL")
            em.emit("if _ob is not None: _ob.end_gen(_sp, _res, _na)")
            em.emit("return _res")
            em.indent -= 1


def _has_loop_ops(h: PlanHandler) -> bool:
    """Whether the handler contains producer loops (and so needs the
    per-item budget charge and its ``_bud`` probe)."""
    return any(
        op[0] in (OP_PRODUCE, OP_INSTANTIATE, OP_EVALREL) for op in h.ops
    )


# ---------------------------------------------------------------------------
# Term-representation specialization (checker kind only).
# ---------------------------------------------------------------------------

class _SpecUnsupported(Exception):
    """Raised during specialized emission when the plan does something
    the pass cannot represent; ``compile_checker`` falls back to the
    boxed-only artifact."""


class _SpecPlanCompiler(_PlanCompiler):
    """The checker compiler with term-representation specialization.

    Emits the same handler/dispatch/fixpoint structure as the base
    compiler — op for op, with identical budget charge sites, trace
    record sites, and observe spans — but runs known datatypes in
    native representations (:mod:`repro.derive.specialize`): ``nat``
    slots are Python ints, ``list`` slots are nested pairs, and ground
    constants are interned.  Reprs are tracked per slot during
    emission; every specialized/boxed boundary (external calls into
    unspecialized siblings, function impls, producer loops) boxes with
    total coercions, so the only partial coercions are the statically
    type-directed eager unboxes at ``TESTCTOR`` projections — those
    raise :class:`~repro.derive.specialize.SpecCoercionError`, which
    the entry wrapper catches by re-running the boxed twin.
    """

    def __init__(
        self, ctx: Context, plan: Plan, info, boxed_rec, fast: bool = False
    ) -> None:
        super().__init__(ctx, plan, "checker")
        self.info = info
        # fast=True emits the instrumentation-free twin: every
        # trace/observe/budget site is omitted instead of guarded.
        # Those sites are no-ops whenever the corresponding cache entry
        # is absent, so the twin is observationally identical on
        # uninstrumented contexts — and the entry wrapper only selects
        # it in exactly that state.
        self.fast = fast
        self.globals["_rbox"] = boxed_rec
        self.globals["_box_nat"] = specialize.box_nat
        self.globals["_unbox_nat"] = specialize.unbox_nat
        self._coercers: dict = {}
        self._srepr: dict[int, Any] = {}
        self._stype: dict[int, "TypeExpr | None"] = {}
        self._inline = False
        self._inline_fail = "break"
        self._tail_ok = False
        self._branch_key = None
        # Cross-relation inlining (fast twin only): per-site prefix
        # counter and a per-relation eligibility cache (None = not
        # inlinable, else (plan, info, fast_fn) of the premise).
        self._inline_n = 0
        self._inline_cache: dict[str, Any] = {}

    # .. repr helpers ............................................................

    def constant(self, value: Value) -> str:
        return super().constant(specialize.intern_value(value))

    def _boxer(self, r) -> str:
        if r == specialize.NAT:
            return "_box_nat"
        key = ("box", r)
        name = self._coercers.get(key)
        if name is None:
            name = self._coercers[key] = self._bind_global(
                "_boxr", specialize.boxer(r)
            )
        return name

    def _unboxer(self, r) -> str:
        if r == specialize.NAT:
            return "_unbox_nat"
        key = ("unbox", r)
        name = self._coercers.get(key)
        if name is None:
            name = self._coercers[key] = self._bind_global(
                "_unboxr", specialize.unboxer(r)
            )
        return name

    def _lit(self, x, r) -> str:
        """A Python literal for compile-time-converted constant *x* in
        repr *r* (boxed parts bind as interned const globals)."""
        if r == specialize.NAT:
            return repr(x)
        if r == specialize.BOX:
            return self.constant(x)
        if x == ():
            return "()"
        return f"({self._lit(x[0], r[1])}, {self._lit(x[1], r)})"

    def _const_in(self, value: Value, r) -> str:
        return self._lit(specialize.value_in_repr(value, r), r)

    def _ctor_owner(self, name: str) -> str | None:
        try:
            return self.ctx.datatypes.owner_of(name).name
        except UnknownNameError:
            return None

    # .. expressions .............................................................

    def sexpr(self, e: tuple, hint=None) -> tuple[str, Any]:
        """Compile an expression; returns ``(code, repr)``.  Constants
        (and nat/list constructor applications) adapt to *hint* when
        they can; everything else reports its natural repr and the
        caller coerces with a total boxer if needed."""
        tag = e[0]
        if tag == X_SLOT:
            return self.slot(e[1]), self._srepr.get(e[1], specialize.BOX)
        if tag == X_CONST:
            want = hint if hint is not None else specialize.BOX
            try:
                return self._const_in(e[1], want), want
            except specialize.SpecCoercionError:
                return self.constant(e[1]), specialize.BOX
        if tag == X_CTOR:
            return self._ctor_expr(e, hint)
        # X_FUN: declared impls take and return boxed values.
        args = ", ".join(self.boxed(a) for a in e[2])
        fn_name = self._bind_fn(f"_f_{e[3]}", e[1])
        return f"{fn_name}({args})", specialize.BOX

    def _ctor_expr(self, e: tuple, hint) -> tuple[str, Any]:
        name = e[1]
        owner = self._ctor_owner(name)
        if owner == "nat" and hint in (None, specialize.NAT):
            if name == "O":
                return "0", specialize.NAT
            code, r = self.sexpr(e[2][0], hint=specialize.NAT)
            if r == specialize.NAT:
                return f"({code} + 1)", specialize.NAT
        elif owner == "list" and type(hint) is tuple:
            if name == "nil":
                return "()", hint
            hd, rh = self.sexpr(e[2][0], hint=hint[1])
            tl, rt = self.sexpr(e[2][1], hint=hint)
            if rh == hint[1] and rt == hint:
                return f"({hd}, {tl})", hint
        args = ", ".join(self.boxed(a) for a in e[2])
        trailing = "," if len(e[2]) == 1 else ""
        return f"Value({name!r}, ({args}{trailing}))", specialize.BOX

    def boxed(self, e: tuple) -> str:
        """Compile an expression to its boxed form (total coercion)."""
        code, r = self.sexpr(e, hint=specialize.BOX)
        if r == specialize.BOX:
            return code
        return f"{self._boxer(r)}({code})"

    def sargs_tuple(self, exprs: tuple) -> str:
        inner = ", ".join(self.boxed(e) for e in exprs)
        trailing = "," if len(exprs) == 1 else ""
        return f"({inner}{trailing})"

    # .. slot typing (drives eager unboxing at projections) ......................

    def _expr_type(self, e: tuple) -> "TypeExpr | None":
        tag = e[0]
        if tag == X_SLOT:
            return self._stype.get(e[1])
        if tag == X_CONST:
            return self._value_type(e[1])
        if tag == X_CTOR:
            owner = self._ctor_owner(e[1])
            if owner is not None and not self.ctx.datatypes.get(owner).params:
                return Ty(owner)
            return None
        decl = self.ctx.functions.get(e[3])
        if decl is not None and is_ground(decl.result_type):
            return decl.result_type
        return None

    def _value_type(self, v: Value) -> "TypeExpr | None":
        owner = self._ctor_owner(v.ctor)
        if owner is not None and not self.ctx.datatypes.get(owner).params:
            return Ty(owner)
        return None

    def _component_types(self, src: int, ctor: str):
        ty = self._stype.get(src)
        if not isinstance(ty, Ty) or ty.name not in self.ctx.datatypes:
            return None
        dt = self.ctx.datatypes.get(ty.name)
        if not dt.has_constructor(ctor) or len(dt.params) != len(ty.args):
            return None
        return dt.constructor_arg_types(ctor, ty.args)

    # .. tests ...................................................................

    def _emit_test(self, em: _Emitter, op: tuple, fail: str) -> None:
        tag = op[0]
        if tag == OP_TESTCTOR:
            self._emit_testctor(em, op, fail)
        elif tag == OP_TESTCONST:
            src, r = op[1], self._srepr.get(op[1], specialize.BOX)
            try:
                lit = self._const_in(op[2], r)
            except specialize.SpecCoercionError:
                # The constant does not inhabit the slot's repr (an
                # ill-typed rule would be rejected earlier; this guards
                # the emission): compare boxed.
                code = self.slot(src)
                if r != specialize.BOX:
                    code = f"{self._boxer(r)}({code})"
                self._fail(em, f"{code} != {self.constant(op[2])}", fail)
                return
            self._fail(em, f"{self.slot(src)} != {lit}", fail)
        else:  # OP_TESTEQ
            cmp = "==" if op[3] else "!="
            a, ra = self.sexpr(op[1])
            b, rb = self.sexpr(op[2], hint=ra)
            if rb != ra:
                a2, ra2 = self.sexpr(op[1], hint=rb)
                if ra2 == rb:
                    a, ra = a2, ra2
                else:
                    if ra != specialize.BOX:
                        a = f"{self._boxer(ra)}({a})"
                    if rb != specialize.BOX:
                        b = f"{self._boxer(rb)}({b})"
            self._fail(em, f"{a} {cmp} {b}", fail)

    def _emit_testctor(self, em: _Emitter, op: tuple, fail: str) -> None:
        src, ctor, dsts = op[1], op[2], op[3]
        r = self._srepr.get(src, specialize.BOX)
        sname = self.slot(src)
        # Inside an inlined dispatch branch the scrutinee's head is
        # already established — skip the re-test, keep projections.
        known = (
            self._inline
            and src == self.plan.dispatch_pos
            and ctor == self._branch_key
        )
        if r == specialize.NAT:
            if ctor == "S":
                if not known:
                    self._fail(em, f"{sname} <= 0", fail)
                em.emit(f"{self.slot(dsts[0])} = {sname} - 1")
                self._srepr[dsts[0]] = specialize.NAT
                self._stype[dsts[0]] = Ty("nat")
            elif ctor == "O":
                if not known:
                    self._fail(em, f"{sname} != 0", fail)
            else:
                raise _SpecUnsupported(f"constructor {ctor!r} on a nat slot")
            return
        if type(r) is tuple:
            if ctor == "cons":
                if not known:
                    self._fail(em, f"not {sname}", fail)
                hd, tl = dsts
                em.emit(f"{self.slot(hd)} = {sname}[0]")
                em.emit(f"{self.slot(tl)} = {sname}[1]")
                self._srepr[hd] = r[1]
                self._srepr[tl] = r
                ty = self._stype.get(src)
                if isinstance(ty, Ty) and ty.name == "list":
                    self._stype[hd] = ty.args[0]
                    self._stype[tl] = ty
            elif ctor == "nil":
                if not known:
                    self._fail(em, f"{sname}", fail)
            else:
                raise _SpecUnsupported(f"constructor {ctor!r} on a list slot")
            return
        # Boxed source: the standard head test, plus eager unboxing of
        # nat components (the handwritten checkers' ``to_int`` move —
        # partial, but statically type-directed, and any failure on an
        # ill-typed value unwinds to the entry's boxed fallback).
        if not known:
            self._fail(em, f"{sname}.ctor != {ctor!r}", fail)
        comp_types = self._component_types(src, ctor)
        for k, dst in enumerate(dsts):
            ty = comp_types[k] if comp_types is not None else None
            if isinstance(ty, Ty) and ty.name == "nat":
                em.emit(f"{self.slot(dst)} = _unbox_nat({sname}.args[{k}])")
                self._srepr[dst] = specialize.NAT
            else:
                em.emit(f"{self.slot(dst)} = {sname}.args[{k}]")
                self._srepr[dst] = specialize.BOX
            self._stype[dst] = ty

    # .. calls ...................................................................

    def _emit_tail_jump(self, em: _Emitter, exprs: tuple) -> bool:
        """Try to emit a final-position RECCHECK as a loop iteration
        (``_size/_in* = ...; continue``).  Only legal when every
        argument already sits in its entry repr; returns False (and
        emits nothing) otherwise, leaving the caller to emit a call."""
        parts = []
        for e, w in zip(exprs, self.info.entry_reprs):
            code, r = self.sexpr(e, hint=w)
            if r != w:
                return False
            parts.append(code)
        em.emit("_size = _size1")
        if parts:
            targets = ", ".join(self._ins_params())
            em.emit(f"{targets} = {', '.join(parts)}")
        em.emit("continue")
        return True

    def _rec_call(self, exprs: tuple) -> str:
        wanted = self.info.entry_reprs
        parts = []
        for e, w in zip(exprs, wanted):
            code, r = self.sexpr(e, hint=w)
            if r != w:
                parts = None
                break
            parts.append(code)
        if parts is not None:
            return f"rec(_size1, _top, {', '.join(parts)})"
        # Repr mismatch: hand the call to the boxed twin (same charge
        # sites, same verdicts) instead of unboxing at runtime.
        boxed = ", ".join(self.boxed(e) for e in exprs)
        return f"_rbox(_size1, _top, {boxed})"

    def _check_call(self, op: tuple) -> str:
        fn = self.checker_fn(op[4])
        attr = "__spec_fast__" if self.fast else "__spec_rec__"
        srec = getattr(fn, attr, None)
        wanted = getattr(fn, "__spec_reprs__", None)
        if srec is not None and wanted is not None and len(op[2]) == len(wanted):
            parts = []
            for e, w in zip(op[2], wanted):
                code, r = self.sexpr(e, hint=w)
                if r != w:
                    parts = None
                    break
                parts.append(code)
            if parts is not None:
                f = self._bind_fn(f"_spchk_{op[4]}", srec)
                return f"{f}(_top, _top, {', '.join(parts)})"
        f = self._bind_fn(f"_chk_{op[4]}", fn)
        return f"{f}(_top, {self.sargs_tuple(op[2])})"

    # .. the checker body ........................................................

    def _emit_checker_handler(self, em: _Emitter, h: PlanHandler) -> None:
        mode_ins = self.plan.mode.ins
        self._srepr = dict(enumerate(self.info.entry_reprs))
        self._stype = dict(enumerate(self.info.entry_types))
        assert len(mode_ins) == len(self.info.entry_reprs)
        if not self.fast:
            super()._emit_checker_handler(em, h)
            return
        em.emit(f"def _h_{h.index}({self._handler_params()}):")
        em.indent += 1
        em.emit("_inc = False")
        self._emit_checker_ops(em, h.ops, 0, depth=0)
        em.emit("return NONE_OB if _inc else SOME_FALSE")
        em.indent -= 1

    def _emit_entry_charge(self, em: _Emitter, *stmts: str) -> None:
        if not self.fast:
            super()._emit_entry_charge(em, *stmts)

    def _emit_handler_charge(self, em: _Emitter, *stmts: str) -> None:
        if not self.fast:
            super()._emit_handler_charge(em, *stmts)

    def _emit_loop_charge(self, em: _Emitter, *stmts: str) -> None:
        if not self.fast:
            super()._emit_loop_charge(em, *stmts)

    def _emit_top(self, em: _Emitter) -> None:
        if not self.fast:
            super()._emit_top(em)
            return
        # The fast twin's fixpoint: no trace/observe/budget sites, and
        # straight-line handlers are inlined into the dispatch (the
        # single-iteration ``while`` supplies the "next handler" jump),
        # so a recursion level costs one Python call instead of one per
        # handler attempt.  Handlers with producer loops keep their
        # function form and are called like the instrumented top does.
        # The whole body sits in a ``while True`` so that a RECCHECK in
        # final position of a branch's final handler becomes a
        # ``continue`` (tail recursion as iteration); ``_none`` then
        # accumulates across iterations, which is exactly the OR the
        # per-level return mapping computes (a level's ``None`` answer
        # turns every enclosing level's answer into ``None``).
        plan = self.plan
        params = ", ".join(self._ins_params())
        em.emit(f"def rec(_size, _top, {params or '*_'}):")
        em.indent += 1
        em.emit("_none = False")
        em.emit("while True:")
        em.indent += 1
        em.emit("if _size == 0:")
        em.indent += 1
        em.emit("_size1 = None")
        if plan.has_recursive:
            em.emit("_none = True")
        self._emit_inline_dispatch(
            em, plan.base, plan.base_table, plan.base_default
        )
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit("_size1 = _size - 1")
        self._emit_inline_dispatch(
            em, plan.handlers, plan.full_table, plan.full_default
        )
        em.indent -= 1
        em.emit("return NONE_OB if _none else SOME_FALSE")
        em.indent -= 2

    def _emit_inline_dispatch(
        self, em: _Emitter, handlers: tuple, table, default
    ) -> None:
        plan = self.plan
        if plan.dispatch_pos < 0:
            self._emit_inline_handlers(em, handlers)
            return
        p = plan.dispatch_pos
        r = self.info.entry_reprs[p]
        scrut = f"_in{p}"

        def branch_handlers(key: str) -> None:
            # The key is established only when the branch's handlers
            # came from the table (the default pool mixes heads).
            self._branch_key = key if key in table else None
            try:
                self._emit_inline_handlers(em, table.get(key, default))
            finally:
                self._branch_key = None

        if r == specialize.NAT:
            em.emit(f"if {scrut} > 0:")
            em.indent += 1
            branch_handlers("S")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            branch_handlers("O")
            em.indent -= 1
        elif type(r) is tuple:
            em.emit(f"if {scrut}:")
            em.indent += 1
            branch_handlers("cons")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            branch_handlers("nil")
            em.indent -= 1
        else:
            em.emit(f"_c = {scrut}.ctor")
            branch = "if"
            for ctor in table:
                em.emit(f"{branch} _c == {ctor!r}:")
                em.indent += 1
                branch_handlers(ctor)
                em.indent -= 1
                branch = "elif"
            em.emit("else:")
            em.indent += 1
            self._emit_inline_handlers(em, default)
            em.indent -= 1

    def _emit_inline_handlers(self, em: _Emitter, handlers: tuple) -> None:
        if not handlers:
            em.emit("pass")
            return
        ins = ", ".join(self._ins_params())
        sep = ", " if ins else ""
        exhausted = "return NONE_OB if _none else SOME_FALSE"
        for h in handlers:
            last = h is handlers[-1]
            if _has_loop_ops(h):
                em.emit(f"_r = _h_{h.index}(_size1, _top{sep}{ins})")
                em.emit("if _r is SOME_TRUE:")
                em.indent += 1
                em.emit("return SOME_TRUE")
                em.indent -= 1
                em.emit("if _r is NONE_OB: _none = True")
                continue
            self._srepr = dict(enumerate(self.info.entry_reprs))
            self._stype = dict(enumerate(self.info.entry_types))
            self._inline = True
            # The last handler of a branch needs no "next handler"
            # jump: a failure IS the branch verdict, so it emits bare
            # (no single-iteration while) with the final return as its
            # fail target — which also legalizes the tail-``continue``.
            self._inline_fail = exhausted if last else "break"
            self._tail_ok = last
            if not last:
                em.emit("while True:")
                em.indent += 1
            try:
                self._emit_checker_ops(em, h.ops, 0, depth=0)
            finally:
                self._inline = False
                self._inline_fail = "break"
                self._tail_ok = False
            if not last:
                em.indent -= 1

    def _emit_checker_ops(self, em: _Emitter, ops: tuple, i: int, depth: int) -> None:
        inline = self._inline and depth == 0
        fail = (
            self._inline_fail
            if inline
            else ("return SOME_FALSE" if depth == 0 else "continue")
        )
        n = len(ops)
        while i < n:
            op = ops[i]
            tag = op[0]
            if tag == OP_EVAL:
                code, r = self.sexpr(op[2])
                em.emit(f"{self.slot(op[1])} = {code}")
                self._srepr[op[1]] = r
                self._stype[op[1]] = self._expr_type(op[2])
            elif tag in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                self._emit_test(em, op, fail)
            elif tag in (OP_CHECK, OP_RECCHECK):
                if (
                    tag == OP_RECCHECK
                    and inline
                    and self._tail_ok
                    and i == n - 1
                    and self._emit_tail_jump(em, op[1])
                ):
                    return
                r = f"_r{i}"
                if tag == OP_RECCHECK:
                    em.emit(f"{r} = {self._rec_call(op[1])}")
                elif self.fast and self._try_inline_check(em, op, r):
                    pass  # premise spliced inline; r holds its verdict
                else:
                    em.emit(f"{r} = {self._check_call(op)}")
                    if op[3]:
                        em.emit(f"{r} = _negate({r})")
                if inline:
                    em.emit(f"if {r} is not SOME_TRUE:")
                    em.indent += 1
                    em.emit(f"if {r} is NONE_OB: _none = True")
                    em.emit(fail)
                    em.indent -= 1
                elif depth == 0:
                    self._fail(em, f"{r} is NONE_OB", "return NONE_OB")
                    self._fail(em, f"{r} is not SOME_TRUE", "return SOME_FALSE")
                else:
                    em.emit(f"if {r} is not SOME_TRUE:")
                    em.indent += 1
                    self._fail(em, f"{r} is NONE_OB", "_inc = True")
                    em.emit(fail)
                    em.indent -= 1
            elif tag == OP_EVALREL:
                # Functionalized premise — see the boxed twin: first
                # definite item commits, straightline continuation.
                item, got, inc = f"_it{i}", f"_g{i}", f"_ic{i}"
                assert not op[5]  # the transform skips recursive ops
                ev = self.eval_twin(op[6], op[7]) if self.fast else None
                if ev is not None:
                    # Direct-eval call — see the boxed twin.  Outputs
                    # arrive boxed, as from the enumerator.
                    fn = self._bind_fn(f"_ev_{op[6]}", ev)
                    args = ", ".join(self.boxed(e) for e in op[3])
                    em.emit(f"{got} = {self.eval_call(fn, args)}")
                    em.emit(f"if {got} is OUT_OF_FUEL or {got} is FAIL:")
                    em.indent += 1
                    if inline:
                        self._fail(
                            em, f"{got} is OUT_OF_FUEL", "_none = True"
                        )
                        em.emit(fail)
                    elif depth == 0:
                        em.emit(
                            f"return NONE_OB if {got} is OUT_OF_FUEL"
                            " else SOME_FALSE"
                        )
                    else:
                        self._fail(
                            em, f"{got} is OUT_OF_FUEL", "_inc = True"
                        )
                        em.emit(fail)
                    em.indent -= 1
                    out_types = self._produce_out_types(op)
                    for k, dst in enumerate(op[4]):
                        em.emit(f"{self.slot(dst)} = {got}[{k}]")
                        self._srepr[dst] = specialize.BOX
                        self._stype[dst] = (
                            out_types[k] if out_types is not None else None
                        )
                    i += 1
                    continue
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"{got} = None")
                em.emit(f"{inc} = False")
                em.emit(f"for {item} in {fn}(_top, {self.sargs_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, f"{inc} = True", "break")
                em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
                em.indent += 1
                em.emit(f"{inc} = True")
                em.emit("continue")
                em.indent -= 1
                em.emit(f"{got} = {item}")
                em.emit("break")
                em.indent -= 1
                em.emit(f"if {got} is None:")
                em.indent += 1
                if depth == 0:
                    em.emit(f"return NONE_OB if {inc} else SOME_FALSE")
                else:
                    self._fail(em, inc, "_inc = True")
                    em.emit(fail)
                em.indent -= 1
                if not self.fast:
                    em.emit("_st = _caches.get('derive_stats')")
                    em.emit("if _st is not None:")
                    em.indent += 1
                    em.emit("_st.functionalized_calls += 1")
                    em.indent -= 1
                out_types = self._produce_out_types(op)
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {got}[{k}]")
                    self._srepr[dst] = specialize.BOX
                    self._stype[dst] = (
                        out_types[k] if out_types is not None else None
                    )
            elif tag == OP_PRODUCE:
                item = f"_it{i}"
                assert not op[5]  # checker schedules: external only
                fn = self._bind_fn(
                    f"_enum_{op[6]}", self.producer_fn(op[6], op[7])
                )
                em.emit(f"for {item} in {fn}(_top, {self.sargs_tuple(op[3])}):")
                em.indent += 1
                self._emit_loop_charge(em, "_inc = True", "break")
                em.emit(f"if {item} is OUT_OF_FUEL or {item} is FAIL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                out_types = self._produce_out_types(op)
                for k, dst in enumerate(op[4]):
                    em.emit(f"{self.slot(dst)} = {item}[{k}]")
                    self._srepr[dst] = specialize.BOX
                    self._stype[dst] = (
                        out_types[k] if out_types is not None else None
                    )
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            else:  # OP_INSTANTIATE
                item = self.slot(op[1])
                self._srepr[op[1]] = specialize.BOX
                self._stype[op[1]] = op[2]
                enum_fn = self._bind_global(
                    "_arb", _make_arbitrary_enum(self.ctx, op[2])
                )
                em.emit(f"for {item} in {enum_fn}(_top):")
                em.indent += 1
                em.emit(f"if {item} is OUT_OF_FUEL:")
                em.indent += 1
                em.emit("_inc = True")
                em.emit("continue")
                em.indent -= 1
                # Charge after the marker test — see the boxed twin.
                self._emit_loop_charge(em, "_inc = True", "break")
                self._emit_checker_ops(em, ops, i + 1, depth + 1)
                em.indent -= 1
                return
            i += 1
        em.emit("return SOME_TRUE")

    def _produce_out_types(self, op: tuple):
        """Output types of a producer call (for downstream projection
        typing); ``None`` when they cannot be read off the relation."""
        try:
            relation = self.ctx.relations.get(op[6])
        except UnknownNameError:
            return None
        outs = op[7].out_list
        if len(outs) != len(op[4]):
            return None
        return tuple(relation.arg_types[j] for j in outs)

    # .. dispatch on native scrutinees ...........................................

    def _emit_candidates(self, em: _Emitter, which: str) -> None:
        plan = self.plan
        if plan.dispatch_pos < 0:
            em.emit(f"_hs = _all_{which}")
            return
        p = plan.dispatch_pos
        r = self.info.entry_reprs[p]
        scrut = f"_in{p}"
        if r == specialize.NAT:
            key = f"('S' if {scrut} > 0 else 'O')"
        elif type(r) is tuple:
            key = f"('cons' if {scrut} else 'nil')"
        else:
            key = f"{scrut}.ctor"
        em.emit(f"_hs = _disp_{which}.get({key}, _disp_{which}_d)")

    # .. cross-relation inlining (fast twin) .....................................

    def _premise_plan(self, rel: str):
        """Eligibility of *rel* for inline splicing: its checker must
        be a compiled specialized artifact, the determinacy analysis
        must prove its checker mode ``det`` (every rule loop-free, so
        the whole fixpoint is a straightline tail loop), and every
        lowered op must be in the subset the splicer emits.  Returns
        ``(plan, info, fast_fn)`` or ``None``; memoized per relation."""
        cached = self._inline_cache.get(rel, False)
        if cached is not False:
            return cached
        self._inline_cache[rel] = None
        from repro.derive.plan import functionalization_enabled

        if rel == self.plan.rel or not functionalization_enabled(self.ctx):
            return None
        fn = self.checker_fn(rel)
        pplan = getattr(fn, "__spec_plan__", None)
        pinfo = getattr(fn, "__spec_info__", None)
        pfast = getattr(fn, "__spec_fast__", None)
        if pplan is None or pinfo is None or pfast is None:
            return None
        from repro.analysis.determinacy import Verdict, relation_verdict
        from repro.core.errors import ReproError
        from repro.derive.modes import Mode

        try:
            arity = self.ctx.relations.get(rel).arity
            verdict = relation_verdict(self.ctx, rel, Mode.checker(arity))
        except ReproError:
            return None
        if verdict is not Verdict.DET:
            return None
        for h in pplan.handlers:
            for o in h.ops:
                t = o[0]
                if t in (OP_EVAL, OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ,
                         OP_CHECK):
                    continue
                if t == OP_RECCHECK and o[2] is None:
                    continue
                return None  # group recursion / producer loops: call
        out = (pplan, pinfo, pfast)
        self._inline_cache[rel] = out
        return out

    def _try_inline_check(self, em: _Emitter, op: tuple, res: str) -> bool:
        """Splice a ``det`` premise checker's specialized dispatch and
        handler bodies into the current (fast-twin) function body,
        eliminating the per-call frame.  The splice replicates the
        premise's own fast fixpoint — size branch, head dispatch, tail
        recursion as iteration — with all locals carrying a per-site
        prefix, and leaves the three-valued verdict in *res*.  Legal
        only in the fast twin: that twin runs exactly when no
        budget/trace/observe is installed, so the premise's (omitted)
        charge and span sites are no-ops there by construction.

        Returns False (emitting nothing) on any unsupported feature;
        the caller then falls back to :meth:`_check_call`."""
        if op[3]:  # negated premise: keep the call form
            return False
        found = self._premise_plan(op[4])
        if found is None:
            return False
        pplan, pinfo, pfast = found
        if len(op[2]) != len(pinfo.entry_reprs):
            return False
        # Caller-side argument expressions, required to already sit in
        # the premise's entry reprs (same precondition as the direct
        # specialized call in _check_call).
        seeds = []
        for e, w in zip(op[2], pinfo.entry_reprs):
            code, r = self.sexpr(e, hint=w)
            if r != w:
                return False
            seeds.append(code)
        self._inline_n += 1
        pfx = f"_p{self._inline_n}"
        inner = _PremiseCompiler(self, pplan, pinfo, pfx, pfast)
        tmp = _Emitter()
        tmp.indent = em.indent
        try:
            self._emit_premise(tmp, inner, pfx, seeds, res)
        except _SpecUnsupported:
            return False
        em.lines.extend(tmp.lines)
        st = self.ctx.caches.get("derive_stats")
        if st is not None:
            st.inlined_frames += 1
        return True

    def _emit_premise(self, em, inner, pfx: str, seeds: list, res: str):
        """The premise fixpoint as a nested loop.  Structure mirrors
        the premise's own ``rec`` (see :meth:`_emit_top`), with returns
        replaced by result assignment: success sets *res* and breaks, a
        tail-recursive jump sets the ``_t`` flag and breaks (the loop
        bottom turns it into ``continue``), and falling out exhausted
        computes the ``None``/``False`` verdict from the ``_none``
        accumulator."""
        pplan = inner.plan
        if seeds:
            targets = ", ".join(f"{pfx}_in{i}" for i in range(pplan.n_ins))
            em.emit(f"{targets} = {', '.join(seeds)}")
        em.emit(f"{pfx}_z = _top")
        em.emit(f"{pfx}_none = False")
        em.emit(f"{res} = None")
        em.emit("while True:")
        em.indent += 1
        em.emit(f"{pfx}_t = False")
        em.emit(f"if {pfx}_z == 0:")
        em.indent += 1
        em.emit(f"{pfx}_z1 = None")
        if pplan.has_recursive:
            em.emit(f"{pfx}_none = True")
        self._emit_premise_dispatch(
            em, inner, pfx, res, pplan.base, pplan.base_table,
            pplan.base_default,
        )
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"{pfx}_z1 = {pfx}_z - 1")
        self._emit_premise_dispatch(
            em, inner, pfx, res, pplan.handlers, pplan.full_table,
            pplan.full_default,
        )
        em.indent -= 1
        em.emit(f"if {pfx}_t:")
        em.indent += 1
        em.emit("continue")
        em.indent -= 1
        em.emit("break")
        em.indent -= 1
        em.emit(f"if {res} is None:")
        em.indent += 1
        em.emit(f"{res} = NONE_OB if {pfx}_none else SOME_FALSE")
        em.indent -= 1

    def _emit_premise_dispatch(
        self, em, inner, pfx: str, res: str, handlers, table, default
    ) -> None:
        pplan = inner.plan

        def branch(key: str) -> None:
            known = key if key in table else None
            self._emit_premise_handlers(
                em, inner, pfx, res, table.get(key, default), known
            )

        if pplan.dispatch_pos < 0:
            self._emit_premise_handlers(em, inner, pfx, res, handlers, None)
            return
        p = pplan.dispatch_pos
        r = inner.info.entry_reprs[p]
        scrut = f"{pfx}_in{p}"
        if r == specialize.NAT:
            em.emit(f"if {scrut} > 0:")
            em.indent += 1
            branch("S")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            branch("O")
            em.indent -= 1
        elif type(r) is tuple:
            em.emit(f"if {scrut}:")
            em.indent += 1
            branch("cons")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            branch("nil")
            em.indent -= 1
        else:
            em.emit(f"{pfx}_c = {scrut}.ctor")
            kw = "if"
            for ctor in table:
                em.emit(f"{kw} {pfx}_c == {ctor!r}:")
                em.indent += 1
                branch(ctor)
                em.indent -= 1
                kw = "elif"
            em.emit("else:")
            em.indent += 1
            self._emit_premise_handlers(em, inner, pfx, res, default, None)
            em.indent -= 1

    def _emit_premise_handlers(
        self, em, inner, pfx: str, res: str, handlers, key
    ) -> None:
        if not handlers:
            em.emit("pass")
            return
        for idx, h in enumerate(handlers):
            last = idx == len(handlers) - 1
            if idx > 0:
                em.emit(f"if {res} is None:")
                em.indent += 1
            inner._srepr = dict(enumerate(inner.info.entry_reprs))
            inner._stype = dict(enumerate(inner.info.entry_types))
            inner._inline = True
            inner._branch_key = key
            em.emit("while True:")
            em.indent += 1
            try:
                self._emit_premise_ops(em, inner, pfx, res, h.ops, last)
            finally:
                inner._inline = False
                inner._branch_key = None
            em.indent -= 1
            if idx > 0:
                em.indent -= 1

    def _emit_premise_ops(
        self, em, inner, pfx: str, res: str, ops: tuple, last: bool
    ) -> None:
        """One premise handler body inside its single-iteration
        ``while`` wrapper: every exit is a ``break`` (failure falls to
        the next handler via the *res*-is-None guard; success assigns
        first)."""
        fail = "break"
        n = len(ops)
        for i, o in enumerate(ops):
            t = o[0]
            if t == OP_EVAL:
                code, r = inner.sexpr(o[2])
                em.emit(f"{inner.slot(o[1])} = {code}")
                inner._srepr[o[1]] = r
                inner._stype[o[1]] = inner._expr_type(o[2])
            elif t in (OP_TESTCTOR, OP_TESTCONST, OP_TESTEQ):
                inner._emit_test(em, o, fail)
            elif t == OP_RECCHECK:
                if (
                    last
                    and i == n - 1
                    and self._emit_premise_tail(em, inner, pfx, o[1])
                ):
                    return
                # Non-tail self-recursion: call the premise's own fast
                # twin at the decremented size (what its rec would do).
                parts = []
                for e, w in zip(o[1], inner.info.entry_reprs):
                    code, r = inner.sexpr(e, hint=w)
                    if r != w:
                        raise _SpecUnsupported("inline rec repr mismatch")
                    parts.append(code)
                f = self._bind_fn(f"_spchk_{inner.plan.rel}", inner.fast_fn)
                rv = f"{pfx}_r{i}"
                em.emit(f"{rv} = {f}({pfx}_z1, _top, {', '.join(parts)})")
                em.emit(f"if {rv} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"if {rv} is NONE_OB: {pfx}_none = True")
                em.emit(fail)
                em.indent -= 1
            else:  # OP_CHECK: the premise's own external premise
                rv = f"{pfx}_r{i}"
                em.emit(f"{rv} = {inner._check_call(o)}")
                if o[3]:
                    em.emit(f"{rv} = _negate({rv})")
                em.emit(f"if {rv} is not SOME_TRUE:")
                em.indent += 1
                em.emit(f"if {rv} is NONE_OB: {pfx}_none = True")
                em.emit(fail)
                em.indent -= 1
        em.emit(f"{res} = SOME_TRUE")
        em.emit("break")

    def _emit_premise_tail(self, em, inner, pfx: str, exprs: tuple) -> bool:
        """A final-position self-recursive premise call as an iteration
        of the spliced loop; legal only when every argument already
        sits in its entry repr (else the caller emits a call)."""
        parts = []
        for e, w in zip(exprs, inner.info.entry_reprs):
            code, r = inner.sexpr(e, hint=w)
            if r != w:
                return False
            parts.append(code)
        em.emit(f"{pfx}_z = {pfx}_z1")
        if parts:
            targets = ", ".join(
                f"{pfx}_in{i}" for i in range(inner.plan.n_ins)
            )
            em.emit(f"{targets} = {', '.join(parts)}")
        em.emit(f"{pfx}_t = True")
        em.emit("break")
        return True


class _PremiseCompiler(_SpecPlanCompiler):
    """Expression/test emitter for a premise plan spliced into a host
    compiler's function body: slot names carry a per-site prefix, and
    all name binding is delegated to the host so the spliced lines
    resolve in the host's exec namespace."""

    def __init__(self, host, plan, info, prefix: str, fast_fn) -> None:
        super().__init__(host.ctx, plan, info, None, fast=True)
        self.prefix = prefix
        self.fast_fn = fast_fn
        self.globals = host.globals
        self._bind_global = host._bind_global  # shares name uniquing
        self._fn_cache = host._fn_cache
        self._const_cache = host._const_cache
        self._coercers = host._coercers

    def slot(self, i: int) -> str:
        base = f"_in{i}" if i < self.plan.n_ins else f"_s{i}"
        return self.prefix + base


def _make_arbitrary_enum(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int):
        yield from _enum_values(ctx, ty, fuel)
        if not slice_exhaustive(ctx, ty, fuel):
            yield OUT_OF_FUEL

    arbitrary.__name__ = f"arbitrary_{mangle(ty)}"
    return arbitrary


def _make_arbitrary_gen(ctx: Context, ty: TypeExpr):
    def arbitrary(fuel: int, rng):
        return _gen_value(ctx, ty, fuel, rng)

    arbitrary.__name__ = f"arbitrary_gen_{mangle(ty)}"
    return arbitrary


# ---------------------------------------------------------------------------
# Public entry points.
# ---------------------------------------------------------------------------

def _uninstrumented(caches) -> bool:
    """Whether no trace/observe/budget is installed — the state in
    which every site the fast twins omit is a no-op."""
    return (
        caches.get("derive_budget") is None
        and caches.get("derive_trace") is None
        and caches.get("derive_observe") is None
    )


def compile_checker(ctx: Context, schedule: Schedule):
    """Compile a checker schedule to ``fn(fuel, args) -> OptionBool``
    (the internal instance convention).

    When :func:`repro.derive.specialize.spec_info` approves the plan, a
    second, representation-specialized fixpoint is compiled alongside
    the boxed one and fronted by unboxing coercions at the entry; an
    ill-typed argument (``SpecCoercionError``) falls back to the boxed
    twin, so the public behaviour is representation-independent.  The
    returned callable always carries ``__batch__`` — the amortized
    entry point that coerces/dispatches once per argument vector.
    """
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "checker").compile()
    info = specialize.spec_info(ctx, plan)
    spec = fast = None
    if info is not None:
        try:
            spec = _SpecPlanCompiler(ctx, plan, info, rec).compile()
            fast = _SpecPlanCompiler(
                ctx, plan, info, rec, fast=True
            ).compile()
        except _SpecUnsupported:
            spec = fast = None
    if spec is None:
        # No representation change — but an eligible checker still gets
        # the instrumentation-free fast twin (all-boxed, handlers
        # inlined), with the instrumented rec as both the instrumented
        # path and the coercion fallback.
        binfo = specialize.boxed_info(ctx, plan)
        if binfo is not None:
            try:
                fastb = _SpecPlanCompiler(
                    ctx, plan, binfo, rec, fast=True
                ).compile()
            except _SpecUnsupported:
                fastb = None
            if fastb is not None:
                info, spec, fast = binfo, rec, fastb

    if spec is None:

        def check(fuel: int, args: tuple) -> Any:
            return rec(fuel, fuel, *args)

        def check_batch(fuel: int, argses) -> list:
            return [rec(fuel, fuel, *args) for args in argses]

    else:
        unbox = specialize.entry_unboxers(info.entry_reprs)
        CoercionError = specialize.SpecCoercionError
        caches = ctx.caches

        def _spec_rec():
            # The fast twin omits trace/observe/budget sites, which are
            # all no-ops when the caches are empty — select it exactly
            # then; any installed instrumentation keeps the full twin.
            return fast if _uninstrumented(caches) else spec

        if unbox is None:

            def check(fuel: int, args: tuple) -> Any:
                try:
                    return _spec_rec()(fuel, fuel, *args)
                except CoercionError:
                    return rec(fuel, fuel, *args)

            def check_batch(fuel: int, argses) -> list:
                out = []
                s = _spec_rec()
                for args in argses:
                    try:
                        out.append(s(fuel, fuel, *args))
                    except CoercionError:
                        out.append(rec(fuel, fuel, *args))
                return out

        else:

            def check(fuel: int, args: tuple) -> Any:
                try:
                    sargs = [f(a) for f, a in zip(unbox, args)]
                except CoercionError:
                    return rec(fuel, fuel, *args)
                try:
                    return _spec_rec()(fuel, fuel, *sargs)
                except CoercionError:
                    return rec(fuel, fuel, *args)

            def check_batch(fuel: int, argses) -> list:
                out = []
                s = _spec_rec()
                for args in argses:
                    try:
                        sargs = [f(a) for f, a in zip(unbox, args)]
                        out.append(s(fuel, fuel, *sargs))
                    except CoercionError:
                        out.append(rec(fuel, fuel, *args))
                return out

        check.__spec_rec__ = spec
        check.__spec_fast__ = fast
        check.__spec_reprs__ = info.entry_reprs
        check.__spec_plan__ = plan
        check.__spec_info__ = info
        check.__spec_source__ = spec.__derived_source__
        check.__spec_fast_source__ = fast.__derived_source__
        check_batch.__spec_rec__ = spec
        check_batch.__spec_fast__ = fast
        check_batch.__spec_reprs__ = info.entry_reprs

    check.__wrapped_rec__ = rec
    check.__derived_source__ = rec.__derived_source__
    check.__batch__ = check_batch
    return check


def compile_enumerator(ctx: Context, schedule: Schedule):
    """Compile an enum schedule to ``fn(fuel, ins) -> iterator``.

    An instrumentation-free fast twin is compiled alongside and
    selected per call whenever no trace/observe/budget is installed
    (all the omitted sites are no-ops in that state).
    """
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "enum").compile()
    if not specialize.specialization_enabled(ctx):

        def enum_st(fuel: int, ins: tuple):
            return rec(fuel, fuel, *ins)

    else:
        fast = _PlanCompiler(ctx, plan, "enum", fast=True).compile()
        caches = ctx.caches

        def enum_st(fuel: int, ins: tuple):
            if _uninstrumented(caches):
                return fast(fuel, fuel, *ins)
            return rec(fuel, fuel, *ins)

        enum_st.__fast_rec__ = fast

    enum_st.__wrapped_rec__ = rec
    enum_st.__derived_source__ = rec.__derived_source__
    _attach_eval_twin(ctx, plan, enum_st)
    return enum_st


def _attach_eval_twin(ctx: Context, plan, enum_st) -> None:
    """Compile and attach the direct-eval twin (``__spec_eval__``) for
    an enum plan whose determinacy verdict is functional or better.
    Fast twins consume it at OP_EVALREL sites; nothing else does, so a
    plan that cannot take one simply keeps the loop form."""
    from repro.derive.plan import functionalization_enabled

    if not functionalization_enabled(ctx):
        return
    if not specialize.specialization_enabled(ctx):
        return  # no fast twins exist to call it
    from repro.analysis.determinacy import relation_verdict

    try:
        if not relation_verdict(ctx, plan.rel, plan.mode_str).at_most_one:
            return
        ev_rec = _PlanCompiler(ctx, plan, "enum", fast=True).compile_eval()
    except ReproError:
        return

    def enum_ev(fuel: int, ins: tuple):
        return ev_rec(fuel, fuel, *ins)

    enum_ev.__derived_source__ = ev_rec.__derived_source__
    enum_st.__spec_eval__ = enum_ev
    # Codegen consumers bypass the wrapper and call the fixpoint with
    # splatted arguments — no tuple, no extra frame per premise.
    enum_st.__spec_eval_rec__ = ev_rec


def compile_generator(ctx: Context, schedule: Schedule):
    """Compile a gen schedule to ``fn(fuel, ins, rng) -> tuple|marker``
    (with the same fast-twin selection as :func:`compile_enumerator`)."""
    plan = lower_schedule(ctx, schedule)
    rec = _PlanCompiler(ctx, plan, "gen").compile()
    if not specialize.specialization_enabled(ctx):

        def gen_st(fuel: int, ins: tuple, rng):
            return rec(fuel, fuel, ins, rng)

    else:
        fast = _PlanCompiler(ctx, plan, "gen", fast=True).compile()
        caches = ctx.caches

        def gen_st(fuel: int, ins: tuple, rng):
            if _uninstrumented(caches):
                return fast(fuel, fuel, ins, rng)
            return rec(fuel, fuel, ins, rng)

        gen_st.__fast_rec__ = fast

    gen_st.__wrapped_rec__ = rec
    gen_st.__derived_source__ = rec.__derived_source__
    return gen_st
