"""Admission-control benchmark: the HA layer's two latency bars.

The high-availability serving PR adds a bounded admission queue,
deadline tracking, an overload controller, and worker supervision to
``repro.serve.Engine``.  Two measurements pin down the cost and the
payoff:

* **admission-off overhead** — the live engine with every HA knob at
  its default (no ``queue_max``, so no controller and no breaker are
  even constructed) vs the frozen PR 9 engine
  (``benchmarks/legacy/engine_pr9.py``, a verbatim pre-HA copy) on
  the batched check workload.  Acceptance bar **<= 1.05x**,
  interleaved best-of-N (see bench_resilience for the harness
  rationale).  Answers are asserted equal unconditionally.
* **burst p99 under ``reject``** — queries offered at 4x the engine's
  service capacity for the length of the burst.  With a bounded queue
  and the ``reject`` policy an admitted query waits behind at most
  ``queue_max`` others, so the end-to-end p99 (queue wait + service)
  of *served* queries stays within **2x** of the unloaded p99; the
  excess resolves instantly as structured sheds.  The same burst
  against an unbounded queue (the live engine without ``queue_max``,
  and the frozen PR 9 engine) serves everything — at a p99 that grows
  with the backlog, the "unbounded growth today" contrast, asserted
  strictly worse.

The burst workload is heavy-tailed on purpose — mostly ~1.1 ms checks
with a ~2.5x heavier check at every 32nd arrival — because that is the
regime where tail latency is interesting: the unloaded p99 is set by
the heavy queries (3% of arrivals, comfortably above the 1% p99
rank), and the deterministic heavy spacing (above two heavy service
times at the 4x arrival rate) means no admitted query ever queues
behind a heavy while another heavy is in service.  The worst served
latency is one heavy plus one light of wait — structurally under the
2x bar.  The bar compares the best of two reject bursts against
the worst of three unloaded measurements bracketing them, so CPU
frequency drift between phases cannot fake a regression.  GIL note: the serving
workers are CPU-bound Python, so the burst engines run ``workers=1``
— concurrent CPU-bound workers would inflate each other's service
times and measure interpreter contention, not queueing policy.

Run standalone (prints the table, writes ``BENCH_admission.json``)::

    PYTHONPATH=src python benchmarks/bench_admission.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_admission.py -s

``REPRO_BENCH_QUICK=1`` shrinks workloads and relaxes the timing bars
(the CI smoke mode — shared runners make tight bars flaky).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.legacy import engine_pr9
from repro.core import parse_declarations
from repro.core.values import Value
from repro.serve import CheckQuery, Engine
from repro.stdlib import standard_context

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

REPEATS = 3 if QUICK else 7
BATCH_QUERIES = 80 if QUICK else 400

#: Burst layout: one worker (see the GIL note above), one queue slot,
#: ``reject`` on overflow.  ``HEAVY_EVERY`` pins the heavy-tailed
#: workload's tail spacing; ``OVERLOAD`` is the offered-load multiple.
WORKERS = 1
QUEUE_MAX = 1
HEAVY_EVERY = 32
OVERLOAD = 4
UNLOADED_QUERIES = 12 * HEAVY_EVERY if QUICK else 24 * HEAVY_EVERY
BURST = 12 * HEAVY_EVERY if QUICK else 48 * HEAVY_EVERY
#: The unbounded engines serve every burst query, so their contrast
#: runs use a shorter burst to keep the benchmark's wall time sane.
BURST_UNBOUNDED = BURST // 4

# Quick mode is a smoke test on shared CI runners; the real bars are
# the ISSUE's acceptance criteria.
OVERHEAD_BAR = 2.0 if QUICK else 1.05
P99_BAR = 4.0 if QUICK else 2.0

WATCHDOG = 120.0

LE_DECL = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive add : nat -> nat -> nat -> Prop :=
| add_O : forall m, add O m m
| add_S : forall n m p, add n m p -> add (S n) m (S p).
"""


def nat(n: int) -> Value:
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def _ctx():
    ctx = standard_context()
    parse_declarations(ctx, LE_DECL)
    return ctx


def _batched_workload(n: int = BATCH_QUERIES):
    """The batched check workload from bench_serve: few (rel, fuel)
    groups repeated many times, so ``check_batch`` has runs to fuse."""
    rng = random.Random(7)
    queries = []
    for _ in range(n):
        if rng.random() < 0.7:
            a, b = rng.randint(0, 30), rng.randint(0, 30)
            queries.append(CheckQuery("le", (nat(a), nat(b)), fuel=64))
        else:
            a, b = rng.randint(0, 12), rng.randint(0, 12)
            queries.append(
                CheckQuery("add", (nat(a), nat(b), nat(a + b)), fuel=32)
            )
    return queries


def _burst_workload(n: int):
    """Heavy-tailed checks: light ~1.1 ms ``le`` positives, with a
    ~2.5x-heavier negative (the checker descends the whole right
    argument before refuting) at every ``HEAVY_EVERY``-th position.
    The deterministic spacing is load-bearing — see the module
    docstring."""
    rng = random.Random(11)
    queries = []
    for i in range(n):
        a = rng.randint(590, 610)
        if i % HEAVY_EVERY == HEAVY_EVERY - 1:
            queries.append(CheckQuery("le", (nat(a), nat(a - 10)), fuel=1300))
        else:
            queries.append(CheckQuery("le", (nat(a), nat(a + 200)), fuel=1300))
    return queries


def _percentile(sorted_xs, q):
    if not sorted_xs:
        return 0.0
    idx = min(len(sorted_xs) - 1, int(round(q * (len(sorted_xs) - 1))))
    return sorted_xs[idx]


def _latency(r) -> float:
    return r.queue_seconds + r.elapsed_seconds


# -- admission-off overhead vs frozen PR 9 -----------------------------------


def bench_admission_off_overhead(repeats: int = REPEATS):
    """Interleaved best-of-N ``run_batch`` wall time, frozen PR 9
    engine vs live engine with the HA layer off; returns
    ``(best_base, best_live, best_ratio)``."""
    queries = _batched_workload()
    base_eng = engine_pr9.Engine(_ctx(), workers=1, batch=True, batch_max=64)
    live_eng = Engine(_ctx(), workers=1, batch=True, batch_max=64)
    try:
        base_eng.prepare(queries)
        live_eng.prepare(queries)
        base_answers = [r.value for r in base_eng.run_batch(queries)]
        live_answers = [r.value for r in live_eng.run_batch(queries)]
        assert base_answers == live_answers, (
            "live engine diverged from the frozen PR 9 engine"
        )
        best_base = best_live = best_ratio = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            base_eng.run_batch(queries)
            t_base = time.perf_counter() - start
            start = time.perf_counter()
            live_eng.run_batch(queries)
            t_live = time.perf_counter() - start
            best_base = min(best_base, t_base)
            best_live = min(best_live, t_live)
            best_ratio = min(best_ratio, t_live / t_base)
    finally:
        base_eng.close()
        live_eng.close()
    return best_base, best_live, best_ratio


# -- burst p99 under reject vs unloaded / unbounded --------------------------


def _unloaded_stats():
    """One query in flight at a time on the bounded engine: pure
    service latency.  Returns ``(p99, mean)`` — the p99 (set by the
    heavy tail) is the denominator of the burst bar, the mean sets the
    burst's arrival pacing."""
    queries = _burst_workload(UNLOADED_QUERIES)
    with Engine(
        _ctx(), workers=WORKERS, queue_max=QUEUE_MAX, admission="reject",
        overload=False, batch=False,
    ) as eng:
        eng.prepare(queries)
        eng.run_batch(queries[:4])  # warm
        lat = []
        for q in queries:
            r = eng.submit(q).result(timeout=WATCHDOG)
            assert r.status == "ok"
            lat.append(_latency(r))
    lat.sort()
    return _percentile(lat, 0.99), sum(lat) / len(lat)


def _burst_results(make_engine, gap: float, n: int = BURST):
    """Offer an *n*-query burst at one query every *gap* seconds,
    where ``gap = mean_service / (OVERLOAD * workers)``.  Pacing is by
    absolute schedule with catch-up (oversleeps are repaid by
    submitting back-to-back), so the average offered rate holds even
    though individual ``time.sleep`` calls overshoot."""
    queries = _burst_workload(n)
    with make_engine() as eng:
        eng.prepare(queries)
        eng.run_batch(queries[:4])  # warm
        futures = []
        start = time.perf_counter()
        for i, q in enumerate(queries):
            due = start + i * gap
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(eng.submit(q))
        window = time.perf_counter() - start
        results = [f.result(timeout=WATCHDOG) for f in futures]
    served = [r for r in results if r.status == "ok"]
    shed = [r for r in results if r.status == "shed"]
    assert len(served) + len(shed) == len(results), (
        "burst produced a status other than ok/shed"
    )
    lat = sorted(_latency(r) for r in served)
    return {
        "served": len(served),
        "shed": len(shed),
        "p50": _percentile(lat, 0.50),
        "p99": _percentile(lat, 0.99),
        "window_seconds": window,
    }


def bench_burst():
    """The 4x-overload burst, three ways: bounded+reject (the HA
    path), the live engine unbounded, and the frozen PR 9 engine.
    Timing noise is handled the way every bench_* harness here does:
    best-of-N on the measured side (two reject bursts, min p99) and
    worst-of-N on the baseline side (three unloaded measurements
    bracketing the bursts, max p99), so neither a noisy burst sample
    nor machine-state drift between phases can fake a regression."""
    p99_before, mean = _unloaded_stats()
    gap = mean / (OVERLOAD * WORKERS)

    def reject_engine():
        return Engine(
            _ctx(), workers=WORKERS, queue_max=QUEUE_MAX,
            admission="reject", overload=False, batch=False,
        )

    bounded = _burst_results(reject_engine, gap)
    p99_mid, _ = _unloaded_stats()
    again = _burst_results(reject_engine, gap)
    if again["p99"] < bounded["p99"]:
        bounded = again
    p99_after, _ = _unloaded_stats()
    unbounded = _burst_results(
        lambda: Engine(_ctx(), workers=WORKERS, batch=False), gap,
        n=BURST_UNBOUNDED,
    )
    legacy = _burst_results(
        lambda: engine_pr9.Engine(_ctx(), workers=WORKERS, batch=False), gap,
        n=BURST_UNBOUNDED,
    )
    # Effective offered load actually achieved by the pacer, as a
    # multiple of service capacity (1/mean per worker).
    effective = (BURST / bounded["window_seconds"]) * mean / WORKERS
    return {
        "unloaded_p99": max(p99_before, p99_mid, p99_after),
        "unloaded_p99_before": p99_before,
        "unloaded_p99_mid": p99_mid,
        "unloaded_p99_after": p99_after,
        "unloaded_mean": mean,
        "arrival_gap": gap,
        "effective_overload": effective,
        "reject": bounded,
        "unbounded_live": unbounded,
        "unbounded_pr9": legacy,
    }


# -- reporting / acceptance --------------------------------------------------


def run_all(verbose: bool = True):
    t_base, t_live, ratio = bench_admission_off_overhead()
    if verbose:
        print(
            f"[bench_admission] batched {BATCH_QUERIES} checks: "
            f"pr9 {t_base * 1e3:8.1f} ms   live {t_live * 1e3:8.1f} ms   "
            f"overhead {ratio:5.3f}x (bar {OVERHEAD_BAR}x)"
        )
    burst = bench_burst()
    if verbose:
        print(
            f"[bench_admission] unloaded p99 {burst['unloaded_p99'] * 1e3:7.2f} ms"
            f"   mean {burst['unloaded_mean'] * 1e3:6.2f} ms"
            f"   burst {BURST} queries at "
            f"{burst['effective_overload']:.1f}x capacity"
        )
        for name in ("reject", "unbounded_live", "unbounded_pr9"):
            row = burst[name]
            print(
                f"[bench_admission] burst {name:14s} served {row['served']:4d}"
                f"   shed {row['shed']:4d}"
                f"   p50 {row['p50'] * 1e3:7.2f} ms"
                f"   p99 {row['p99'] * 1e3:7.2f} ms"
            )
    return ratio, burst


def _burst_ok(burst) -> bool:
    return burst["reject"]["p99"] <= P99_BAR * burst["unloaded_p99"]


# -- pytest entry points -----------------------------------------------------


def test_admission_off_overhead():
    _, _, ratio = bench_admission_off_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"admission-off overhead {ratio:.3f}x vs PR 9 engine "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_reject_burst_p99():
    burst = bench_burst()
    assert _burst_ok(burst), (
        f"served p99 {burst['reject']['p99'] * 1e3:.2f} ms exceeds "
        f"{P99_BAR}x unloaded p99 "
        f"({burst['unloaded_p99'] * 1e3:.2f} ms) under a "
        f"{burst['effective_overload']:.1f}x burst"
    )
    # The pacer really overloaded the engine, and the bounded queue
    # really shed the excess; every query resolved (served + shed).
    assert burst["effective_overload"] >= 2.0
    assert burst["reject"]["served"] + burst["reject"]["shed"] == BURST
    assert burst["reject"]["shed"] > 0, "an overload burst should shed"
    # The contrast: unbounded queues serve everything, at p99s that
    # grow with the backlog instead of staying near unloaded.
    assert burst["unbounded_pr9"]["shed"] == 0
    assert burst["unbounded_pr9"]["p99"] > burst["reject"]["p99"]


if __name__ == "__main__":
    from benchmarks.benchjson import emit

    ratio, burst = run_all()
    ok = ratio <= OVERHEAD_BAR and _burst_ok(burst)
    emit("admission", {
        "admission_off_overhead": ratio,
        "overhead_bar": OVERHEAD_BAR,
        "p99_bar": P99_BAR,
        "burst_queries": BURST,
        "workers": WORKERS,
        "queue_max": QUEUE_MAX,
        "offered_overload": OVERLOAD,
        "effective_overload": burst["effective_overload"],
        "unloaded_p99_seconds": burst["unloaded_p99"],
        "unloaded_mean_seconds": burst["unloaded_mean"],
        "arrival_gap_seconds": burst["arrival_gap"],
        "burst": {
            name: burst[name]
            for name in ("reject", "unbounded_live", "unbounded_pr9")
        },
        "ok": ok,
    })
    sys.exit(0 if ok else 1)
