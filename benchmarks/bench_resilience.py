"""Resource-governance benchmark: the budgets-off zero-overhead guard.

The budget hooks added to ``derive/exec_core.py`` and the compiled
twins cost one ``caches.get('derive_budget')`` probe per fixpoint
level (plus a predicated branch per charge site) when no budget is
installed.  This bench holds that to **noise**:

* **budgets-off overhead** — the live executors vs the frozen PR 4
  executors (``benchmarks/legacy/exec_core_pr4.py`` and
  ``codegen_pr4.py``, verbatim copies from before the hooks landed)
  on the Figure 3 BST/STLC checker workloads, the ``le`` enumerator
  stream, and the STLC generator; acceptance bar **<= 1.05x** on each
  hot path.  Timings are interleaved best-of-N (base/live alternating)
  so scheduler drift hits both sides equally.
* **budgets-on cost** — reported, not barred: an installed unlimited
  budget pays one counter increment and compare per charge site — the
  price of cooperative cancellation, not a regression.
* **trip latency** — reported: how fast a deadline trip unwinds a
  deliberately exponential search (the cancellation-responsiveness
  story; a trip must cost milliseconds, not the search's natural
  runtime).

Run standalone (prints the table)::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -s

``REPRO_BENCH_QUICK=1`` shrinks workloads and relaxes the timing bars
(the CI smoke mode — shared runners make tight bars flaky).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_plan import bst_workload, stlc_workload
from benchmarks.legacy import codegen_pr4, exec_core_pr4
from repro.core import parse_declarations
from repro.derive import Mode, build_schedule, disable_functionalization, exec_core
from repro.derive import codegen
from repro.derive.plan import lower_schedule
from repro.resilience import Budget, budget_scope, install_budget, remove_budget
from repro.stdlib import standard_context

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROUNDS = 2 if QUICK else 8
REPEATS = 3 if QUICK else 7
GEN_SAMPLES = 30 if QUICK else 300

# Quick mode is a smoke test on shared CI runners; the real bar is the
# ISSUE's acceptance criterion.
OVERHEAD_BAR = 2.0 if QUICK else 1.05

LE_DECL = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).
"""


def _interleaved(fn_a, fn_b, repeats: int = REPEATS):
    """Best-of-N for two loops, alternating A/B each round; returns
    ``(best_a, best_b, best_ratio)`` with the minimum per-round
    ``b/a`` as the bar statistic (see bench_observe for rationale)."""
    best_a = best_b = best_ratio = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        t_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        t_b = time.perf_counter() - start
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
        best_ratio = min(best_ratio, t_b / t_a)
    return best_a, best_b, best_ratio


def _rounds_for(wl) -> int:
    return ROUNDS * (12 if "STLC" in wl.name else 1)


# -- workloads ---------------------------------------------------------------


def _checker_loop(wl, run_checker):
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    ctx, fuel, pool = wl.ctx, wl.fuel, wl.args_pool
    rounds = _rounds_for(wl)

    def loop():
        for _ in range(rounds):
            for args in pool:
                run_checker(ctx, plans, plan, fuel, fuel, args)

    return loop


def _checker_answers(wl, run_checker):
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    return [
        run_checker(wl.ctx, plans, plan, wl.fuel, wl.fuel, args)
        for args in wl.args_pool
    ]


def _le_ctx():
    ctx = standard_context()
    parse_declarations(ctx, LE_DECL)
    return ctx


def _enum_loop(ctx, run_enum, fuel=7, rounds=None):
    schedule = build_schedule(ctx, "le", Mode.from_string("oo"))
    plan = lower_schedule(ctx, schedule)
    rounds = (ROUNDS * 4) if rounds is None else rounds

    def loop():
        for _ in range(rounds):
            for _pair in run_enum(ctx, plan, fuel, fuel, ()):
                pass

    return loop


def _gen_loop(ctx, schedule, run_gen, ins):
    plan = lower_schedule(ctx, schedule)

    def loop():
        rng = random.Random(3)
        for _ in range(GEN_SAMPLES):
            run_gen(ctx, plan, 6, 6, ins, rng)

    return loop


# -- measurements ------------------------------------------------------------


def bench_checker_off_overhead(wl):
    """Live interpreter (budget hooks present, no budget installed)
    vs frozen PR 4 interpreter, same Plan, same pool."""
    assert _checker_answers(wl, exec_core_pr4.run_checker) == _checker_answers(
        wl, exec_core.run_checker
    )
    base = _checker_loop(wl, exec_core_pr4.run_checker)
    live = _checker_loop(wl, exec_core.run_checker)
    base()  # warm caches (instance resolution, plan lowering)
    live()
    return _interleaved(base, live)


def bench_compiled_off_overhead(wl):
    """Live compiled checker vs the PR 4 code generator's output."""
    base_fn = codegen_pr4.compile_checker(wl.ctx, wl.schedule)
    live_fn = codegen.compile_checker(wl.ctx, wl.schedule)
    assert wl.answers(base_fn) == wl.answers(live_fn)
    base = lambda: wl.loop(base_fn)  # noqa: E731
    live = lambda: wl.loop(live_fn)  # noqa: E731
    base()
    live()
    return _interleaved(base, live)


def bench_enum_off_overhead():
    ctx = _le_ctx()
    base = _enum_loop(ctx, exec_core_pr4.run_enum)
    live = _enum_loop(ctx, exec_core.run_enum)
    assert list(exec_core_pr4.run_enum(
        ctx, lower_schedule(ctx, build_schedule(ctx, "le", Mode.from_string("oo"))),
        5, 5, (),
    )) == list(exec_core.run_enum(
        ctx, lower_schedule(ctx, build_schedule(ctx, "le", Mode.from_string("oo"))),
        5, 5, (),
    ))
    base()
    live()
    return _interleaved(base, live)


def bench_gen_off_overhead():
    from repro.casestudies import stlc
    from repro.core.values import V, from_list

    ctx = stlc.make_context()
    # The frozen PR-4 generator predates OP_EVALREL; run the shared
    # plan pass-off so both sides execute the same op set.
    disable_functionalization(ctx)
    schedule = build_schedule(ctx, "typing", Mode.from_string("ioi"))
    ins = (from_list([]), V("N"))
    base = _gen_loop(ctx, schedule, exec_core_pr4.run_gen, ins)
    live = _gen_loop(ctx, schedule, exec_core.run_gen, ins)
    base()
    live()
    return _interleaved(base, live)


def bench_budget_on_cost(wl):
    """The live interpreter with no budget vs an installed unlimited
    budget (reported, not barred)."""
    live = _checker_loop(wl, exec_core.run_checker)
    live()
    t_off = min(_interleaved(live, live, max(2, REPEATS // 2))[:2])
    install_budget(wl.ctx, Budget())
    try:
        start = time.perf_counter()
        live()
        t_on = time.perf_counter() - start
    finally:
        remove_budget(wl.ctx)
    return t_off, t_on


def bench_trip_latency():
    """Wall-clock to cut off a search that would otherwise run far
    past the deadline: the responsiveness of cooperative cancellation.
    Draining ``le[oo]`` at fuel 600 yields ~180k pairs (seconds of
    work); the deadline truncates the stream in milliseconds."""
    ctx = _le_ctx()
    schedule = build_schedule(ctx, "le", Mode.from_string("oo"))
    plan = lower_schedule(ctx, schedule)
    fuel = 600
    deadline = 0.02
    with budget_scope(ctx, deadline_seconds=deadline, check_every=64) as bud:
        start = time.perf_counter()
        for _pair in exec_core.run_enum(ctx, plan, fuel, fuel, ()):
            pass
        elapsed = time.perf_counter() - start
    return deadline, elapsed, bud.exhausted


# -- reporting / acceptance --------------------------------------------------


def _row(label, t_base, t_live, ratio):
    print(
        f"[bench_resilience] {label:26s} pr4 {t_base * 1e3:9.1f} ms"
        f"   live {t_live * 1e3:9.1f} ms   overhead {ratio:5.3f}x"
    )


def run_all(verbose: bool = True):
    results = {}
    for wl_fn in (bst_workload, stlc_workload):
        wl = wl_fn()
        t_b, t_l, r = bench_checker_off_overhead(wl)
        results[f"interp {wl.name}"] = r
        if verbose:
            _row(f"interp  {wl.name}", t_b, t_l, r)
        t_b, t_l, r = bench_compiled_off_overhead(wl_fn())
        results[f"compiled {wl.name}"] = r
        if verbose:
            _row(f"compiled {wl.name}", t_b, t_l, r)
    t_b, t_l, r = bench_enum_off_overhead()
    results["enum le[oo]"] = r
    if verbose:
        _row("enum    le[oo]", t_b, t_l, r)
    t_b, t_l, r = bench_gen_off_overhead()
    results["gen STLC[ioi]"] = r
    if verbose:
        _row("gen     STLC typing[ioi]", t_b, t_l, r)
    t_off, t_on = bench_budget_on_cost(stlc_workload())
    if verbose:
        print(
            f"[bench_resilience] budget-on cost: off {t_off * 1e3:.1f} ms"
            f"   on {t_on * 1e3:.1f} ms   (+{(t_on / t_off - 1) * 100:.1f}%)"
        )
    deadline, elapsed, exhausted = bench_trip_latency()
    if verbose:
        print(
            f"[bench_resilience] trip latency: deadline {deadline * 1e3:.0f} ms"
            f"   unwound in {elapsed * 1e3:.1f} ms"
            f"   ({exhausted.limit if exhausted else 'no trip!'})"
        )
    return results


# -- pytest entry points -----------------------------------------------------


def test_budgets_off_overhead_interp_bst():
    _, _, ratio = bench_checker_off_overhead(bst_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"budgets-off overhead {ratio:.3f}x on BST interp "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_budgets_off_overhead_interp_stlc():
    _, _, ratio = bench_checker_off_overhead(stlc_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"budgets-off overhead {ratio:.3f}x on STLC interp "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_budgets_off_overhead_compiled_stlc():
    _, _, ratio = bench_compiled_off_overhead(stlc_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"budgets-off overhead {ratio:.3f}x on STLC compiled "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_budgets_off_overhead_enum():
    _, _, ratio = bench_enum_off_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"budgets-off overhead {ratio:.3f}x on le[oo] enum "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_budgets_off_overhead_gen():
    _, _, ratio = bench_gen_off_overhead()
    assert ratio <= OVERHEAD_BAR, (
        f"budgets-off overhead {ratio:.3f}x on STLC gen "
        f"(bar {OVERHEAD_BAR}x)"
    )


def test_trip_unwinds_promptly():
    deadline, elapsed, exhausted = bench_trip_latency()
    assert exhausted is not None and exhausted.limit == "deadline"
    # Generous absolute bound: the point is "milliseconds, not the
    # search's natural runtime", not a tight timing bar.
    assert elapsed < deadline + 1.0


if __name__ == "__main__":
    from benchmarks.benchjson import emit

    results = run_all()
    worst = max(results.values())
    print(f"[bench_resilience] worst budgets-off overhead: {worst:.3f}x")
    emit("resilience", {
        "overheads": results, "worst_overhead": worst,
        "overhead_bar": OVERHEAD_BAR,
    })
    sys.exit(0 if worst <= OVERHEAD_BAR else 1)
