"""Plan IR benchmark: the refactor's speedup guard.

Measures the live Plan-based backends against the frozen pre-refactor
baselines in ``benchmarks/legacy`` (Schedule-walking interpreters with
dict environments; the Schedule-consuming code generator) on Figure 3
checker/generator workloads:

* **interp checker** — BST and STLC checking over a fixed pool of
  generated inputs; acceptance bar: the Plan interpreter is
  **>= 1.5x** the legacy interpreter.
* **interp generator** — STLC ``typing[ioi]`` sampling; reported (the
  gen loop is dominated by RNG draws, so the bar stays on checkers).
* **compiled** — the same checker workload through both code
  generators; bar: the Plan-driven compiled code is **no slower**
  (<= 1.10x the legacy compiled time).
* **profiling off-overhead** — the Plan interpreter with and without
  an active ``profile(ctx)`` trace; the disabled path is also
  implicitly guarded by the 1.5x interpreter bar (its hooks are
  present in every measured run).

External instances (the ``le`` premise checker etc.) resolve through
the live registry for baseline and candidate alike, so the comparison
isolates the measured relation's own execution strategy.

Run standalone (prints the table)::

    PYTHONPATH=src python benchmarks/bench_plan.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_plan.py -s

``REPRO_BENCH_QUICK=1`` shrinks the workloads and relaxes the bars to
sanity checks — the CI smoke mode (shared runners make tight timing
bars flaky).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.legacy.codegen import compile_checker as legacy_compile_checker
from benchmarks.legacy.interp_checker import DerivedChecker as LegacyChecker
from benchmarks.legacy.interp_gen import DerivedGenerator as LegacyGenerator
from repro.casestudies import bst, stlc
from repro.core.values import V, from_int, from_list
from repro.derive import Mode, build_schedule, disable_functionalization, profile
from repro.derive.codegen import compile_checker as plan_compile_checker
from repro.derive.interp_checker import DerivedChecker as PlanChecker
from repro.derive.interp_gen import DerivedGenerator as PlanGenerator

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROUNDS = 2 if QUICK else 8
POOL = 10 if QUICK else 40
GEN_SAMPLES = 30 if QUICK else 300
REPEATS = 2 if QUICK else 3

# Quick mode is a smoke test: the workloads still run end to end and
# must agree, but shared CI runners make tight timing bars flaky.
INTERP_BAR = 0.5 if QUICK else 1.5
COMPILED_BAR = 3.0 if QUICK else 1.10


def _timed(fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time (best-of defends against scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- workloads ---------------------------------------------------------------


def _bst_pool(ctx, seed: int = 11):
    rng = random.Random(seed)
    lo, hi = from_int(0), from_int(16)
    pool = []
    while len(pool) < POOL:
        out = bst.handwritten_bst_gen(8, (lo, hi), rng)
        if isinstance(out, tuple):
            pool.append(out[0])
    return lo, hi, pool[:POOL]


def _stlc_pool(seed: int = 12):
    rng = random.Random(seed)

    def go(depth: int):
        if depth == 0 or rng.random() < 0.3:
            return (
                V("Con", from_int(rng.randrange(0, 3)))
                if rng.random() < 0.5
                else V("Vart", from_int(rng.randrange(0, 2)))
            )
        pick = rng.randrange(3)
        if pick == 0:
            return V("Add", go(depth - 1), go(depth - 1))
        if pick == 1:
            return V("Abs", V("N"), go(depth - 1))
        return V("App", go(depth - 1), go(depth - 1))

    return [go(3) for _ in range(POOL)]


class CheckerWorkload:
    """One Figure 3 checker cell: a schedule plus an input pool.

    The frozen PR-3/PR-4 baselines that interpret these plans predate
    ``OP_EVALREL``, so the context runs with premise functionalization
    off — both sides of every legacy comparison execute the same
    pass-off plan (the ``bench_specialize`` bars own the pass-on story).
    """

    def __init__(self, name, ctx, rel, fuel, args_pool):
        disable_functionalization(ctx)
        self.name = name
        self.ctx = ctx
        self.schedule = build_schedule(
            ctx, rel, Mode.checker(ctx.relations.get(rel).arity)
        )
        self.fuel = fuel
        self.args_pool = args_pool

    def loop(self, check):
        fuel = self.fuel
        for _ in range(ROUNDS):
            for args in self.args_pool:
                check(fuel, args)

    def answers(self, check):
        return [check(self.fuel, args) for args in self.args_pool]


def bst_workload() -> CheckerWorkload:
    ctx = bst.make_context()
    lo, hi, pool = _bst_pool(ctx)
    return CheckerWorkload(
        "BST bst", ctx, "bst", 24, [(lo, hi, t) for t in pool]
    )


def stlc_workload() -> CheckerWorkload:
    ctx = stlc.make_context()
    env, ty = from_list([]), V("N")
    return CheckerWorkload(
        "STLC typing", ctx, "typing", 16,
        [(env, term, ty) for term in _stlc_pool()],
    )


# -- measurements ------------------------------------------------------------


def bench_interp_checker(wl: CheckerWorkload):
    legacy = LegacyChecker(wl.ctx, wl.schedule)
    plan = PlanChecker(wl.ctx, wl.schedule)
    assert wl.answers(legacy.check) == wl.answers(plan.check)
    t_legacy = _timed(lambda: wl.loop(legacy.check))
    t_plan = _timed(lambda: wl.loop(plan.check))
    return t_legacy, t_plan


def bench_compiled_checker(wl: CheckerWorkload):
    legacy = legacy_compile_checker(wl.ctx, wl.schedule)
    plan = plan_compile_checker(wl.ctx, wl.schedule)
    assert wl.answers(legacy) == wl.answers(plan)
    t_legacy = _timed(lambda: wl.loop(legacy))
    t_plan = _timed(lambda: wl.loop(plan))
    return t_legacy, t_plan


def bench_interp_gen():
    ctx = stlc.make_context()
    disable_functionalization(ctx)
    schedule = build_schedule(ctx, "typing", Mode.from_string("ioi"))
    legacy = LegacyGenerator(ctx, schedule)
    plan = PlanGenerator(ctx, schedule)
    env, ty = from_list([]), V("N")

    def loop(gen):
        rng = random.Random(3)
        for _ in range(GEN_SAMPLES):
            gen.gen_st(6, (env, ty), rng)

    # No draw-sequence equality vs legacy: the dispatch index filters
    # the candidate handler list, which changes the weighted-choice
    # totals (the *new* interp and compiled backends are sequence-
    # identical; tests/derive/test_backend_diff.py asserts that).
    # Sanity: both still produce actual samples on this workload.
    for gen in (legacy, plan):
        outs = [gen.gen_st(6, (env, ty), random.Random(5)) for _ in range(30)]
        assert any(isinstance(o, tuple) for o in outs)
    return _timed(lambda: loop(legacy)), _timed(lambda: loop(plan))


def bench_profiling_overhead(wl: CheckerWorkload):
    plan = PlanChecker(wl.ctx, wl.schedule)
    t_off = _timed(lambda: wl.loop(plan.check))
    with profile(wl.ctx):
        t_on = _timed(lambda: wl.loop(plan.check))
    return t_off, t_on


# -- reporting / acceptance --------------------------------------------------


def _row(label, t_base, t_new, metric):
    ratio = t_base / t_new if t_new else float("inf")
    print(
        f"[bench_plan] {label:28s} baseline {t_base * 1e3:9.1f} ms"
        f"   plan {t_new * 1e3:9.1f} ms   {metric} {ratio:5.2f}x"
    )
    return ratio


def run_all(verbose: bool = True):
    results = {}
    for wl_fn in (bst_workload, stlc_workload):
        wl = wl_fn()
        t_l, t_p = bench_interp_checker(wl)
        results[f"interp {wl.name}"] = t_l / t_p
        if verbose:
            _row(f"interp  {wl.name}", t_l, t_p, "speedup")
        t_cl, t_cp = bench_compiled_checker(wl)
        results[f"compiled {wl.name}"] = t_cp / t_cl
        if verbose:
            _row(f"compiled {wl.name}", t_cl, t_cp, "speedup")
    t_gl, t_gp = bench_interp_gen()
    results["interp gen STLC"] = t_gl / t_gp
    if verbose:
        _row("interp  STLC gen[ioi]", t_gl, t_gp, "speedup")
    t_off, t_on = bench_profiling_overhead(stlc_workload())
    if verbose:
        print(
            f"[bench_plan] profiling overhead: off {t_off * 1e3:.1f} ms"
            f"   on {t_on * 1e3:.1f} ms"
            f"   (+{(t_on / t_off - 1) * 100:.1f}%)"
        )
    return results


# -- pytest entry points -----------------------------------------------------


def test_interp_checker_speedup_bst():
    t_l, t_p = bench_interp_checker(bst_workload())
    assert t_l / t_p >= INTERP_BAR, (
        f"plan interpreter speedup only {t_l / t_p:.2f}x (bar {INTERP_BAR}x)"
    )


def test_interp_checker_speedup_stlc():
    t_l, t_p = bench_interp_checker(stlc_workload())
    assert t_l / t_p >= INTERP_BAR, (
        f"plan interpreter speedup only {t_l / t_p:.2f}x (bar {INTERP_BAR}x)"
    )


def test_compiled_no_slower():
    t_l, t_p = bench_compiled_checker(stlc_workload())
    assert t_p / t_l <= COMPILED_BAR, (
        f"plan compiled {t_p / t_l:.2f}x legacy compiled "
        f"(bar {COMPILED_BAR}x)"
    )


def test_gen_interp_and_compiled_agree_under_seed():
    # The two *new* backends share one Plan, so they must draw the
    # same RNG sequence and return identical samples.
    from repro.derive.codegen import compile_generator

    ctx = stlc.make_context()
    schedule = build_schedule(ctx, "typing", Mode.from_string("ioi"))
    interp = PlanGenerator(ctx, schedule)
    compiled = compile_generator(ctx, schedule)
    env, ty = from_list([]), V("N")
    for seed in range(20):
        a = interp.gen_st(6, (env, ty), random.Random(seed))
        b = compiled(6, (env, ty), random.Random(seed))
        assert a == b, f"seed {seed}: {a!r} != {b!r}"


if __name__ == "__main__":
    results = run_all()
    interp_worst = min(
        v for k, v in results.items() if k.startswith("interp ")
        and "gen" not in k
    )
    compiled_worst = max(
        v for k, v in results.items() if k.startswith("compiled")
    )
    print(
        f"\n[bench_plan] worst interp speedup: {interp_worst:.2f}x "
        f"(bar: {INTERP_BAR}x); worst compiled ratio: "
        f"{compiled_worst:.2f}x of legacy (bar: {COMPILED_BAR}x slowdown)"
    )
    from benchmarks.benchjson import emit

    emit("plan", {
        "speedups": results,
        "worst_interp_speedup": interp_worst,
        "worst_compiled_ratio": compiled_worst,
        "interp_bar": INTERP_BAR,
        "compiled_bar": COMPILED_BAR,
    })
    ok = interp_worst >= INTERP_BAR and compiled_worst <= COMPILED_BAR
    raise SystemExit(0 if ok else 1)
