"""Section 6.2, second experiment: mean tests to failure under
injected mutations.

The suite injects bugs into BST insertion, STLC substitution/lifting,
and IFC label propagation, then measures how many tests each generator
needs to find them.  The paper's claim: handwritten and derived
generators are *indistinguishable* on this metric (similar
distributions of test data).
"""

from __future__ import annotations

import random

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record

from repro.quickchick import Mutant, for_all, quick_check

RUNS = 4
# Per-case test caps, sized to each case's hardest mutant.
MAX_TESTS = {"BST": 4000, "STLC": 6000, "IFC": 12000}


def _mean_ttf(cell, gen_fn, mutant, seed0=101) -> tuple[float | None, int]:
    failures = []
    escaped = 0
    for run in range(RUNS):
        gen, predicate = cell.workload.property_fn(gen_fn, cell.hand_check, mutant.impl)
        prop = for_all(gen, predicate, mutant.name)
        report = quick_check(
            prop, num_tests=MAX_TESTS[cell.name], seed=seed0 + 7919 * run, size=5
        )
        if report.failed:
            failures.append(report.tests_run)
        else:
            escaped += 1
    mean = sum(failures) / len(failures) if failures else None
    return mean, escaped


def _run_cell(benchmark, cell, mutants):
    rows = []

    def experiment():
        rows.clear()
        for mutant in mutants:
            hand_mean, hand_esc = _mean_ttf(cell, cell.hand_gen, mutant)
            drv_mean, drv_esc = _mean_ttf(cell, cell.derived_gen, mutant)
            rows.append((mutant.name, hand_mean, hand_esc, drv_mean, drv_esc))
        return rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n=== mean tests to failure — {cell.name} ===")
    print(f"{'mutant':24s}{'handwritten':>16s}{'derived':>16s}")
    for name, hand_mean, hand_esc, drv_mean, drv_esc in rows:
        hand = f"{hand_mean:.0f}" if hand_mean is not None else "escaped"
        drv = f"{drv_mean:.0f}" if drv_mean is not None else "escaped"
        if hand_esc:
            hand += f" ({hand_esc} esc)"
        if drv_esc:
            drv += f" ({drv_esc} esc)"
        record("mutation", f"{cell.name}.{name}", {
            "handwritten_mean_ttf": hand_mean, "handwritten_escapes": hand_esc,
            "derived_mean_ttf": drv_mean, "derived_escapes": drv_esc,
        })
        print(f"{name:24s}{hand:>16s}{drv:>16s}")
        # Both generators must catch every mutant in at least one run.
        assert hand_mean is not None
        assert drv_mean is not None


def test_bst_mutations(benchmark, bst_cell):
    from repro.casestudies import bst

    _run_cell(benchmark, bst_cell, bst.MUTANTS)


def test_stlc_mutations(benchmark, stlc_cell):
    from repro.casestudies import stlc

    _run_cell(benchmark, stlc_cell, stlc.MUTANTS)


def test_ifc_mutations(benchmark, ifc_cell):
    from repro.casestudies import ifc

    _run_cell(benchmark, ifc_cell, ifc.MUTANTS)
