"""Machine-readable benchmark results: ``BENCH_<name>.json`` emission.

Every ``bench_*.py`` harness prints a human table; this module gives
them all one structured side channel.  :func:`record` accumulates
``key -> value`` rows per benchmark name, :func:`emit` writes the
accumulated (or explicitly passed) payload to ``BENCH_<name>.json``
in ``$REPRO_BENCH_JSON_DIR`` (default: the current directory), with a
small meta block — timestamp, quick-mode flag, Python version — so CI
artifacts from different runners stay comparable.

The files are plain one-object JSON, not JSONL: each benchmark run
overwrites its own file, and a results dashboard globs
``BENCH_*.json``.  Writing is best-effort: an unwritable directory
warns on stderr rather than failing the benchmark run.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

_PENDING: "dict[str, dict]" = {}


def _out_dir() -> str:
    return os.environ.get("REPRO_BENCH_JSON_DIR") or os.getcwd()


def record(name: str, key: str, value) -> None:
    """Accumulate one result row for benchmark *name* (flushed by the
    next :func:`emit` for that name)."""
    _PENDING.setdefault(name, {})[key] = value


def emit(name: str, payload: "dict | None" = None) -> "str | None":
    """Write ``BENCH_<name>.json`` and return its path (None on I/O
    failure).  *payload* merges over any rows :func:`record`-ed under
    *name*; both may be empty, which still emits the meta block."""
    results = dict(_PENDING.pop(name, {}))
    if payload:
        results.update(payload)
    doc = {
        "benchmark": name,
        "meta": {
            "unix_time": int(time.time()),
            "quick": bool(os.environ.get("REPRO_BENCH_QUICK")),
            "python": platform.python_version(),
        },
        "results": results,
    }
    path = os.path.join(_out_dir(), f"BENCH_{name}.json")
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
    except OSError as e:
        print(f"[benchjson] cannot write {path}: {e}", file=sys.stderr)
        return None
    return path


def emit_pending() -> "list[str]":
    """Flush every benchmark with :func:`record`-ed rows (the pytest
    session-finish hook for harnesses with no ``__main__`` block)."""
    return [
        p for name in list(_PENDING)
        if (p := emit(name)) is not None
    ]
