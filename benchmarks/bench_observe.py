"""Observability benchmark: the zero-overhead-off guard.

The observe hooks added to ``derive/exec_core.py`` and the compiled
twins cost one ``caches.get('derive_observe')`` probe per fixpoint
level when observation is off.  This bench holds that to **noise**:

* **observation-off overhead** — the live executor vs the frozen PR 3
  executor (``benchmarks/legacy/exec_core_pr3.py``, a verbatim copy
  from before the hooks landed) on the Figure 3 BST and STLC checker
  workloads; acceptance bar **<= 1.05x**.  Timings are interleaved
  best-of-N (base/live alternating) so scheduler drift hits both
  sides equally.
* **observation-on cost** — reported, not barred: spans allocate one
  object per fixpoint level, so this is expected to be a multiple,
  and it is the price of a full call tree, not a regression.
* **backend identity** — with observation on, the interpreted and
  compiled backends must produce identical timing-stripped span trees
  and identical rule coverage on the same workload (the PR 3 trace
  contract, extended to spans).

Run standalone (prints the table)::

    PYTHONPATH=src python benchmarks/bench_observe.py

or under pytest (asserts the bars)::

    PYTHONPATH=src python -m pytest benchmarks/bench_observe.py -s

``REPRO_BENCH_QUICK=1`` shrinks workloads and relaxes the timing bar
(identity assertions stay exact — they are not timing-sensitive).
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.bench_plan import bst_workload, stlc_workload
from benchmarks.legacy import exec_core_pr3
from repro.derive import exec_core
from repro.derive.codegen import compile_checker
from repro.derive.plan import lower_schedule
from repro.observe import observe

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROUNDS = 2 if QUICK else 8
REPEATS = 3 if QUICK else 7

# Quick mode is a smoke test on shared CI runners; the real bar is the
# ISSUE's acceptance criterion.
OVERHEAD_BAR = 2.0 if QUICK else 1.05


def _interleaved(fn_a, fn_b, repeats: int = REPEATS) -> tuple[float, float, float]:
    """Best-of-N for two loops, alternating A/B each round so clock
    drift and cache warmth hit both sides equally.

    Returns ``(best_a, best_b, best_ratio)`` where ``best_ratio`` is
    the *minimum per-round* ``b/a`` — the bar statistic.  A real
    overhead shows in every round; scheduler noise only in some, so
    the per-round minimum converges on the true ratio where a ratio of
    independent bests keeps the noise of both sides.
    """
    best_a = best_b = best_ratio = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        t_a = time.perf_counter() - start
        start = time.perf_counter()
        fn_b()
        t_b = time.perf_counter() - start
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
        best_ratio = min(best_ratio, t_b / t_a)
    return best_a, best_b, best_ratio


def _rounds_for(wl) -> int:
    """Scale rounds so every measured loop runs tens of milliseconds —
    a 5% bar is unreadable on a 2 ms loop (timer noise alone is
    several percent there)."""
    return ROUNDS * (12 if "STLC" in wl.name else 1)


def _checker_loop(wl, run_checker):
    """A closed loop driving *run_checker* (live or frozen executor)
    over the workload's input pool — same Plan object for both."""
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    ctx, fuel, pool = wl.ctx, wl.fuel, wl.args_pool
    rounds = _rounds_for(wl)

    def loop():
        for _ in range(rounds):
            for args in pool:
                run_checker(ctx, plans, plan, fuel, fuel, args)

    return loop


def _checker_answers(wl, run_checker):
    plan = lower_schedule(wl.ctx, wl.schedule)
    plans = {plan.rel: plan}
    return [
        run_checker(wl.ctx, plans, plan, wl.fuel, wl.fuel, args)
        for args in wl.args_pool
    ]


# -- measurements ------------------------------------------------------------


def bench_off_overhead(wl):
    """Live executor (hooks present, observation off) vs frozen PR 3
    executor on the same plan and pool."""
    assert _checker_answers(wl, exec_core_pr3.run_checker) == _checker_answers(
        wl, exec_core.run_checker
    )
    base = _checker_loop(wl, exec_core_pr3.run_checker)
    live = _checker_loop(wl, exec_core.run_checker)
    base()  # warm caches (instance resolution, plan lowering)
    live()
    return _interleaved(base, live)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_on_cost(wl):
    """The live executor with observation off vs on (reported)."""
    live = _checker_loop(wl, exec_core.run_checker)
    live()
    t_off = _best_of(live, max(2, REPEATS // 2))
    with observe(wl.ctx):
        t_on = _best_of(live, max(2, REPEATS // 2))
    return t_off, t_on


def spans_and_coverage(wl, check, n_inputs: int = 10):
    """Run *check* over a pool prefix under observation; return the
    timing-stripped span identities and the coverage table."""
    with observe(wl.ctx) as obs:
        for args in wl.args_pool[:n_inputs]:
            check(wl.fuel, args)
    return obs.spans.identities(), obs.coverage().table


def backend_identity(wl, n_inputs: int = 10):
    """Interp vs compiled: identical span trees and coverage."""
    from repro.derive.interp_checker import DerivedChecker

    compiled = compile_checker(wl.ctx, wl.schedule)
    interp = DerivedChecker(wl.ctx, wl.schedule)
    ids_c, cov_c = spans_and_coverage(wl, compiled, n_inputs)
    ids_i, cov_i = spans_and_coverage(wl, interp.check, n_inputs)
    return (ids_i, cov_i), (ids_c, cov_c)


# -- pytest entry points -----------------------------------------------------


def test_observe_off_overhead_bst():
    _, _, ratio = bench_off_overhead(bst_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"observation-off overhead {ratio:.3f}x on BST (bar {OVERHEAD_BAR}x)"
    )


def test_observe_off_overhead_stlc():
    _, _, ratio = bench_off_overhead(stlc_workload())
    assert ratio <= OVERHEAD_BAR, (
        f"observation-off overhead {ratio:.3f}x on STLC (bar {OVERHEAD_BAR}x)"
    )


def test_spans_and_coverage_backend_identical_bst():
    (ids_i, cov_i), (ids_c, cov_c) = backend_identity(bst_workload())
    assert ids_i, "no spans recorded"
    assert ids_i == ids_c
    assert cov_i == cov_c


def test_spans_and_coverage_backend_identical_stlc():
    (ids_i, cov_i), (ids_c, cov_c) = backend_identity(stlc_workload())
    assert ids_i, "no spans recorded"
    assert ids_i == ids_c
    assert cov_i == cov_c


def test_gen_spans_backend_identical():
    from benchmarks.bench_plan import PlanGenerator, build_schedule
    from repro.casestudies import stlc
    from repro.core.values import V, from_list
    from repro.derive import Mode
    from repro.derive.codegen import compile_generator

    ctx = stlc.make_context()
    schedule = build_schedule(ctx, "typing", Mode.from_string("ioi"))
    interp = PlanGenerator(ctx, schedule)
    compiled = compile_generator(ctx, schedule)
    env, ty = from_list([]), V("N")

    def run(gen_st):
        with observe(ctx) as obs:
            for seed in range(10):
                gen_st(6, (env, ty), random.Random(seed))
        return obs.spans.identities(), obs.coverage().table

    ids_i, cov_i = run(interp.gen_st)
    ids_c, cov_c = run(compiled)
    assert ids_i and ids_i == ids_c
    assert cov_i == cov_c


# -- standalone --------------------------------------------------------------


if __name__ == "__main__":
    from benchmarks.benchjson import emit, record

    worst = 0.0
    for wl_fn in (bst_workload, stlc_workload):
        wl = wl_fn()
        t_base, t_live, ratio = bench_off_overhead(wl)
        record("observe", f"off_overhead.{wl.name}", ratio)
        worst = max(worst, ratio)
        print(
            f"[bench_observe] off-overhead {wl.name:12s}"
            f" frozen {t_base * 1e3:8.1f} ms   live {t_live * 1e3:8.1f} ms"
            f"   ratio {ratio:5.3f}x (bar {OVERHEAD_BAR}x)"
        )
        t_off, t_on = bench_on_cost(wl_fn())
        record("observe", f"on_cost_ratio.{wl.name}", t_on / t_off)
        print(
            f"[bench_observe] on-cost      {wl.name:12s}"
            f" off {t_off * 1e3:8.1f} ms   on {t_on * 1e3:8.1f} ms"
            f"   ({t_on / t_off:5.2f}x, reported only)"
        )
    for wl_fn in (bst_workload, stlc_workload):
        wl = wl_fn()
        (ids_i, cov_i), (ids_c, cov_c) = backend_identity(wl)
        same = ids_i == ids_c and cov_i == cov_c
        print(
            f"[bench_observe] identity     {wl.name:12s}"
            f" {len(ids_i)} spans   interp==compiled: {same}"
        )
        assert same
    print(
        f"\n[bench_observe] worst observation-off ratio {worst:.3f}x"
        f" (bar {OVERHEAD_BAR}x)"
    )
    record("observe", "worst_off_overhead", worst)
    record("observe", "overhead_bar", OVERHEAD_BAR)
    emit("observe")
    raise SystemExit(0 if worst <= OVERHEAD_BAR else 1)
