"""Shared fixtures and helpers for the benchmark suite.

Every benchmark prints the rows/series of the paper artifact it
regenerates (Table 1, Figure 3 left/right, the §6.2 mutation table,
the §6.3 reflection timings), in addition to the pytest-benchmark
timing machinery.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import random

import pytest

from repro.casestudies import bst, ifc, stlc
from repro.derive.instances import CHECKER, GEN, resolve, resolve_compiled
from repro.derive.modes import Mode


class Fig3Cell:
    """One case-study column of Figure 3: the generator/checker pairs."""

    def __init__(self, name, ctx, workload, hand_gen, hand_check,
                 rel, gen_mode, correct_impl):
        self.name = name
        self.ctx = ctx
        self.workload = workload
        self.hand_gen = hand_gen
        self.hand_check = hand_check
        arity = ctx.relations.get(rel).arity
        self.derived_check = resolve_compiled(ctx, CHECKER, rel, Mode.checker(arity))
        self.derived_check_interp = resolve(ctx, CHECKER, rel, Mode.checker(arity)).fn
        self.derived_gen = resolve_compiled(ctx, GEN, rel, Mode.from_string(gen_mode))
        self.correct_impl = correct_impl


@pytest.fixture(scope="session")
def bst_cell():
    ctx = bst.make_context()
    return Fig3Cell(
        "BST", ctx, bst.BstWorkload(ctx),
        bst.handwritten_bst_gen, bst.handwritten_bst_check,
        "bst", "iio", bst.insert,
    )


@pytest.fixture(scope="session")
def stlc_cell():
    ctx = stlc.make_context()
    return Fig3Cell(
        "STLC", ctx, stlc.StlcWorkload(ctx),
        stlc.handwritten_typing_gen, stlc.handwritten_typing_check,
        "typing", "ioi", stlc.subst,
    )


@pytest.fixture(scope="session")
def ifc_cell():
    ctx = ifc.make_context()
    return Fig3Cell(
        "IFC", ctx, ifc.IfcWorkload(ctx),
        ifc.handwritten_indist_gen, ifc.handwritten_indist_check,
        "indist_list", "io", ifc.CORRECT_STEP,
    )


def pytest_sessionfinish(session, exitstatus):
    """Flush BENCH_<name>.json for benchmarks that recorded rows
    during the run (see benchmarks/benchjson.py)."""
    from .benchjson import emit_pending

    emit_pending()


def run_property(gen, predicate, num_tests: int, seed: int, size: int = 5) -> int:
    """A tight test loop (generation + predicate); returns tests run
    (discards excluded).  The benchmark measures this function."""
    rng = random.Random(seed)
    done = 0
    attempts = 0
    while done < num_tests and attempts < 20 * num_tests:
        attempts += 1
        case = gen(size, rng)
        if not isinstance(case, tuple):
            continue
        verdict = predicate(case)
        if verdict is None:
            continue
        ok = verdict if isinstance(verdict, bool) else verdict.is_true
        if not ok:
            raise AssertionError(f"property failed on {case}")
        done += 1
    return done
