"""Section 6.3: proof by computational reflection.

The paper proves ``Sorted (repeat 1 2000)`` two ways:

* naive proof term (repeat eapply):  11.2 s to build + 16.3 s to check,
  with a proof term of thousands of nodes;
* reflective (derived checker + soundness): < 0.06 s each, proof
  "term" of size 1.

This bench sweeps the list length (including the paper's n = 2000) and
reports build/check times and proof sizes for both strategies.  The
expected shape: explicit proofs grow super-linearly in time and
linearly in size; reflection stays orders of magnitude cheaper.
"""

from __future__ import annotations

import pytest

try:
    from .benchjson import record
except ImportError:  # standalone: python benchmarks/bench_*.py
    from benchjson import record

from repro.core import parse_declarations
from repro.core.values import from_int, from_list
from repro.stdlib import standard_context
from repro.validation import prove_by_reflection, prove_explicit

DECLS = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive Sorted : list nat -> Prop :=
| Sorted_nil : Sorted []
| Sorted_sing : forall x, Sorted [x]
| Sorted_cons : forall x y l,
    le x y -> Sorted (y :: l) -> Sorted (x :: y :: l).
"""


@pytest.fixture(scope="module")
def ctx():
    c = standard_context()
    parse_declarations(c, DECLS)
    # Derive (and thereby certify once) the checker before timing.
    from repro.derive import derive_checker

    derive_checker(c, "Sorted")
    return c


def repeat_ones(n: int):
    return (from_list([from_int(1)] * n),)


SWEEP = [50, 200, 800, 2000]

# The generic proof-search baseline is quadratic in n with Python-level
# constants (the paper's Coq baseline is also super-linear: 11.2 s + 16.3 s
# at n = 2000); we sweep it over smaller n and report the scaling.
EXPLICIT_SWEEP = [50, 150, 400]


@pytest.mark.parametrize("n", SWEEP)
def test_reflective_proof(benchmark, ctx, n):
    args = repeat_ones(n)
    benchmark.extra_info["n"] = n
    report = benchmark(prove_by_reflection, ctx, "Sorted", args, n + 8)
    assert report.proved
    print(f"\n[reflection] n={n:5d} reflective: build {report.build_seconds:.4f}s "
          f"check {report.check_seconds:.4f}s size {report.proof_size}")


@pytest.mark.parametrize("n", EXPLICIT_SWEEP)
def test_explicit_proof(benchmark, ctx, n):
    args = repeat_ones(n)
    benchmark.extra_info["n"] = n
    report = benchmark.pedantic(
        prove_explicit, args=(ctx, "Sorted", args, n + 8), rounds=1, iterations=1
    )
    assert report.proved
    print(f"\n[reflection] n={n:5d} explicit:   build {report.build_seconds:.4f}s "
          f"check {report.check_seconds:.4f}s size {report.proof_size}")


def test_sorted_2000_headline(benchmark):
    """The paper's headline contrast: reflective at the full n = 2000,
    explicit at n = 400 (its quadratic baseline would take minutes at
    2000 — even more lopsided than the paper's 27.5 s).

    Uses a fresh context: the sweep above warms the reference-search
    memo, which would let the explicit proof cheat.
    """
    fresh = standard_context()
    parse_declarations(fresh, DECLS)
    from repro.derive import derive_checker

    derive_checker(fresh, "Sorted")
    n = 2000
    reflective = benchmark.pedantic(
        prove_by_reflection, args=(fresh, "Sorted", repeat_ones(n), n + 8),
        rounds=1, iterations=1,
    )
    explicit_n = 400
    explicit = prove_explicit(
        fresh, "Sorted", repeat_ones(explicit_n), explicit_n + 8
    )
    print("\n=== sorted_2000 (Section 6.3) ===")
    print(f"explicit (n={explicit_n}):   {explicit}")
    print(f"reflective (n={n}): {reflective}")
    assert explicit.proved and reflective.proved
    assert reflective.proof_size == 1
    assert explicit.proof_size >= 2 * explicit_n - 1
    explicit_total = explicit.build_seconds + explicit.check_seconds
    reflective_total = reflective.build_seconds + reflective.check_seconds
    # Reflection at 5x the goal size still beats the explicit proof.
    speedup = explicit_total / max(reflective_total, 1e-9)
    record("reflection", "sorted_2000", {
        "explicit_n": explicit_n, "reflective_n": n,
        "explicit_total_s": explicit_total,
        "reflective_total_s": reflective_total,
        "speedup": speedup,
    })
    print(f"speedup (explicit n=400 vs reflective n=2000): {speedup:,.0f}x")
    assert speedup > 3
